#include "mapreduce/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/io_tag.h"
#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::mapreduce {

namespace {

/// Streaming granularity of task-side I/O (the DFS client / spill writer
/// works in buffers of this order).
constexpr uint64_t kTaskChunk = MiB(1);
/// Shuffle segment fetches use small buffers (the mapred-era fetcher reads
/// 64 KiB at a time) — one source of the MR disks' small-request pattern.
constexpr uint64_t kShuffleChunk = KiB(64);

struct StreamState {
  os::FileSystem* fs = nullptr;
  os::File* file = nullptr;
  uint64_t offset = 0;
  uint64_t total = 0;
  uint64_t chunk = 0;
  uint64_t pos = 0;
  std::function<void()> cb;
  obs::TraceSession* trace = nullptr;
  uint64_t flow = 0;
};

void AppendStep(std::shared_ptr<StreamState> st) {
  if (st->pos >= st->total) {
    st->cb();
    return;
  }
  const uint64_t n = std::min(st->chunk, st->total - st->pos);
  obs::FlowScope flow_scope(st->trace, st->flow);
  st->fs->Append(st->file, n, [st, n] {
    st->pos += n;
    AppendStep(st);
  });
}

void ReadStep(std::shared_ptr<StreamState> st) {
  if (st->pos >= st->total) {
    st->cb();
    return;
  }
  const uint64_t n = std::min(st->chunk, st->total - st->pos);
  obs::FlowScope flow_scope(st->trace, st->flow);
  st->fs->Read(st->file, st->offset + st->pos, n, [st, n] {
    st->pos += n;
    ReadStep(st);
  });
}

}  // namespace

void AppendStream(sim::Simulator* sim, os::FileSystem* fs, os::File* file,
                  uint64_t total, uint64_t chunk, std::function<void()> cb,
                  obs::TraceSession* trace, uint64_t flow) {
  if (total == 0) {
    sim->ScheduleAfter(SimDuration{}, std::move(cb));
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->fs = fs;
  st->file = file;
  st->offset = 0;
  st->total = total;
  st->chunk = chunk;
  st->cb = std::move(cb);
  st->trace = trace;
  st->flow = flow;
  AppendStep(std::move(st));
}

void ReadStream(sim::Simulator* sim, os::FileSystem* fs, os::File* file,
                uint64_t offset, uint64_t total, uint64_t chunk,
                std::function<void()> cb, obs::TraceSession* trace,
                uint64_t flow) {
  if (total == 0) {
    sim->ScheduleAfter(SimDuration{}, std::move(cb));
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->fs = fs;
  st->file = file;
  st->offset = offset;
  st->total = total;
  st->chunk = chunk;
  st->cb = std::move(cb);
  st->trace = trace;
  st->flow = flow;
  ReadStep(std::move(st));
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

struct MrEngine::MapTask {
  size_t split_idx = 0;
  uint32_t node = 0;
  uint64_t epoch = 0;  ///< Node epoch at launch; stale after a failure.
  bool local = false;
  bool preempted = false;  ///< Marked for reclaim; abandons at a boundary.
  bool speculative = false;  ///< A backup attempt for a straggling original.
  bool cancelled = false;  ///< Lost the commit race; abandons at a boundary.
  bool crashed = false;  ///< crash-task fault; fails at the next boundary.
  bool reexec = false;   ///< Re-executing a lost committed map (charging).
  SimTime start_time;  ///< Launch instant (straggler detection).
  std::string input_path;
  uint64_t split_bytes = 0;
  uint64_t split_offset = 0;
  uint64_t pos = 0;           ///< Input bytes consumed.
  uint64_t buffer_bytes = 0;  ///< Pre-codec intermediate in the sort buffer.
  std::vector<RunFile> spills;
  uint64_t span = 0;  ///< map-task trace span (0 when tracing is off).
  uint64_t flow = 0;  ///< Trace flow carried into every I/O of this task.
};

struct MrEngine::ReduceTask {
  uint32_t idx = 0;
  uint32_t node = 0;
  bool dead = false;  ///< Host failed; continuations must abandon.
  bool done = false;
  size_t next_output = 0;   ///< Next map output to fetch.
  uint32_t inflight = 0;    ///< Concurrent fetches.
  uint64_t mem_bytes = 0;   ///< Shuffled bytes held in memory.
  uint64_t fetched_bytes = 0;
  std::vector<RunFile> runs;
  bool merging = false;
  bool spilling = false;
  uint64_t span = 0;        ///< reduce-task trace span.
  uint64_t merge_span = 0;  ///< reduce-merge trace span.
  uint64_t flow = 0;        ///< Trace flow carried into every task I/O.
};

struct MrEngine::Job {
  uint32_t job_id = 0;
  uint64_t seq = 0;         ///< Admission order (the FIFO key).
  std::string pool = "default";
  double weight = 1.0;
  std::string obs_label;    ///< "<name>#<id>" on metrics labels / span args.
  SimJobSpec spec;
  JobCallback done;
  JobCounters counters;

  std::vector<Split> splits;
  std::vector<std::deque<size_t>> node_local;  ///< May hold started entries.
  std::deque<size_t> pending;                  ///< Global FIFO.
  std::vector<bool> started;
  /// Per split: a finished attempt has registered (or, for map-only jobs,
  /// claimed) the output. Later-finishing rival attempts are discarded.
  std::vector<bool> committed;
  /// Per split: waiting out a retry backoff (started stays true so the
  /// scheduler never sees a parked split as runnable).
  std::vector<bool> parked;
  /// Per split: FAILED (crashed) attempts charged against the budget.
  std::vector<uint32_t> split_failures;
  /// Per split: committed output was lost with its node; the re-execution
  /// attempt's input reads and spill writes charge mr.reexec.*.
  std::vector<bool> reexec;
  uint32_t unstarted_maps = 0;  ///< == count of splits with started == false.
  uint32_t parked_splits = 0;   ///< == count of splits with parked == true.
  /// Attempt budget exhausted beyond max_failures_percent: the job drains
  /// (remaining splits written off, attempts cancelled) and reports
  /// `failure` instead of OK.
  bool failing = false;
  Status failure = Status::OK();

  uint32_t maps_done = 0;
  uint32_t running_maps = 0;
  uint32_t preempt_marked = 0;  ///< Running maps marked for reclaim.
  uint32_t speculative_running = 0;  ///< Running backup attempts.
  uint32_t spec_preempt_marked = 0;  ///< Backups among preempt_marked.
  SimDuration map_duration;     ///< Sum over committed maps (mean baseline).
  std::vector<std::shared_ptr<MapTask>> running_map_tasks;
  std::vector<MapOutput> map_outputs;

  uint32_t num_reducers = 0;
  bool reducers_created = false;
  std::deque<std::shared_ptr<ReduceTask>> reduce_queue;  ///< Awaiting slots.
  std::vector<std::shared_ptr<ReduceTask>> reducers;     ///< Running/done.
  uint32_t reduces_done = 0;
  uint32_t running_reduces = 0;
  uint32_t map_outputs_written = 0;  ///< Map-only HDFS outputs completed.
  uint32_t next_reduce_node = 0;
  bool finished = false;
  uint64_t span = 0;  ///< Whole-job trace span (cluster row).

  // Per-job metric attribution, labelled {job="<name>#<id>"}; null when no
  // registry is attached.
  obs::Counter* m_spills = nullptr;
  obs::Counter* m_shuffle_bytes = nullptr;
  obs::Counter* m_hdfs_read = nullptr;
  obs::Counter* m_hdfs_write = nullptr;

  bool map_only() const { return spec.num_reduce_tasks == 0; }
};

MrEngine::MrEngine(cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
                   const SlotConfig& slots, Rng rng)
    : cluster_(cluster), hdfs_(hdfs), slots_(slots), rng_(rng) {
  BDIO_CHECK(cluster != nullptr);
  BDIO_CHECK(hdfs != nullptr);
  free_map_slots_.assign(cluster->num_workers(), slots.map_slots);
  free_reduce_slots_.assign(cluster->num_workers(), slots.reduce_slots);
  node_dead_.assign(cluster->num_workers(), false);
  node_epoch_.assign(cluster->num_workers(), 0);
  node_strikes_.assign(cluster->num_workers(), 0);
  node_blacklisted_.assign(cluster->num_workers(), false);
  retry_rng_ = rng_.Fork();
  default_sched_ = std::make_unique<sched::FifoScheduler>();
  sched_ = default_sched_.get();
}

MrEngine::~MrEngine() = default;

void MrEngine::SetScheduler(sched::Scheduler* scheduler) {
  sched_ = scheduler != nullptr ? scheduler : default_sched_.get();
}

void MrEngine::AttachObs(obs::TraceSession* trace,
                         obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  if (metrics == nullptr) return;
  m_map_spills_ = metrics->GetCounter("mr.map_spills");
  m_reduce_spills_ = metrics->GetCounter("mr.reduce_spills");
  m_shuffle_bytes_ = metrics->GetCounter("mr.shuffle_bytes");
  m_preempted_maps_ = metrics->GetCounter("mr.preempted_maps");
  m_spec_launched_ = metrics->GetCounter("mr.speculative.launched");
  m_spec_killed_ = metrics->GetCounter("mr.speculative.killed");
  m_spec_wasted_ = metrics->GetCounter("mr.speculative.wasted_bytes");
  m_retry_failures_ = metrics->GetCounter("mr.retry.task_failures");
  m_retry_scheduled_ = metrics->GetCounter("mr.retry.scheduled");
  m_retry_blacklisted_ = metrics->GetCounter("mr.retry.nodes_blacklisted");
  m_retry_abandoned_ = metrics->GetCounter("mr.retry.splits_abandoned");
  m_retry_wasted_ = metrics->GetCounter("mr.retry.wasted_work_bytes");
  m_reexec_maps_ = metrics->GetCounter("mr.reexec.maps");
  m_reexec_read_ = metrics->GetCounter("mr.reexec.read_bytes");
  m_reexec_write_ = metrics->GetCounter("mr.reexec.write_bytes");
  m_merge_width_ =
      metrics->GetHistogram("mr.merge_width", {}, {2, 4, 8, 16, 32, 64, 128});
}

void MrEngine::InjectNodeFailure(uint32_t node) {
  BDIO_CHECK(node < cluster_->num_workers());
  if (node_dead_[node]) return;
  node_dead_[node] = true;
  ++node_epoch_[node];
  free_map_slots_[node] = 0;
  free_reduce_slots_[node] = 0;
  // A dead node's blacklist entry is moot (and must not resurrect it).
  node_blacklisted_[node] = false;
  node_strikes_[node] = 0;

  const std::vector<std::shared_ptr<Job>> active = jobs_;
  for (const auto& job : active) {
    if (job->finished) continue;
    // Completed map outputs on the dead node are gone: re-execute their
    // maps. The lost bytes are wasted work; the re-execution attempt's
    // duplicate input reads and spill writes charge mr.reexec.*.
    for (MapOutput& mo : job->map_outputs) {
      if (mo.node == node && mo.file != nullptr) {
        ++job->counters.maps_reexecuted;
        ++maps_reexecuted_;
        if (m_reexec_maps_) m_reexec_maps_->Inc();
        job->counters.wasted_work_bytes += mo.bytes;
        wasted_work_bytes_ += mo.bytes;
        if (m_retry_wasted_) m_retry_wasted_->Add(mo.bytes);
        job->reexec[mo.split_idx] = true;
        mo.file = nullptr;
        mo.fs = nullptr;
        mo.bytes = 0;
        BDIO_CHECK(job->maps_done > 0);
        --job->maps_done;
        job->committed[mo.split_idx] = false;  // the re-execution recommits
        job->started[mo.split_idx] = false;
        job->pending.push_back(mo.split_idx);
        ++job->unstarted_maps;
      }
    }
    // Running reducers on the node restart elsewhere; the segments the dead
    // attempt already copied are re-fetched by its replacement.
    for (auto& rt : job->reducers) {
      if (rt->node == node && !rt->done && !rt->dead) {
        rt->dead = true;
        job->counters.wasted_work_bytes += rt->fetched_bytes;
        wasted_work_bytes_ += rt->fetched_bytes;
        if (m_retry_wasted_) m_retry_wasted_->Add(rt->fetched_bytes);
        if (trace_) {
          // The attempt's spans end here; the replacement opens fresh ones.
          trace_->EndSpan(rt->merge_span);
          trace_->EndSpan(rt->span);
          trace_->FlowEnd(rt->flow, node + 1);
        }
        BDIO_CHECK(running_reduces_ > 0);
        --running_reduces_;
        BDIO_CHECK(job->running_reduces > 0);
        --job->running_reduces;
        auto replacement = std::make_shared<ReduceTask>();
        replacement->idx = rt->idx;
        job->reduce_queue.push_back(std::move(replacement));
      }
    }
  }
  // (Running maps on the node are discarded when they report in: their
  // epoch no longer matches.)
  DispatchMaps();
  for (const auto& job : active) {
    if (!job->finished) MaybeStartReducers(job);
  }
  DispatchReduces();
}

void MrEngine::InjectTaskCrash(uint32_t node) {
  BDIO_CHECK(node < cluster_->num_workers());
  if (node_dead_[node]) return;
  for (const auto& job : jobs_) {
    if (job->finished) continue;
    for (const auto& mt : job->running_map_tasks) {
      if (mt->node != node) continue;
      if (mt->epoch != node_epoch_[node]) continue;
      if (mt->preempted || mt->cancelled || mt->crashed) continue;
      // The attempt fails at its next chunk boundary (in-flight I/O
      // drains first, as in the node-failure model).
      mt->crashed = true;
    }
  }
}

void MrEngine::StrikeNode(uint32_t node) {
  if (node_dead_[node] || node_blacklisted_[node]) return;
  ++node_strikes_[node];
  if (node_strikes_[node] < ft_config_.blacklist_strikes) return;
  node_blacklisted_[node] = true;
  ++nodes_blacklisted_;
  if (m_retry_blacklisted_) m_retry_blacklisted_->Inc();
  if (trace_) {
    trace_->Instant(node + 1, "mr", "node-blacklisted",
                    "{\"strikes\":" + std::to_string(node_strikes_[node]) +
                        "}");
  }
  // The node rejoins placement (with a clean slate) after the decay
  // window — unless it died outright in the meantime.
  cluster_->sim()->ScheduleAfter(ft_config_.blacklist_decay, [this, node] {
    if (node_dead_[node] || !node_blacklisted_[node]) return;
    node_blacklisted_[node] = false;
    node_strikes_[node] = 0;
    DispatchMaps();
    DispatchReduces();
  });
}

uint32_t MrEngine::SubmitJob(const SimJobSpec& spec, JobCallback done,
                             const std::string& pool, double weight) {
  auto job = std::make_shared<Job>();
  job->job_id = next_job_id_++;
  job->seq = job->job_id;
  job->pool = pool.empty() ? "default" : pool;
  job->weight = weight;
  job->spec = spec;
  job->done = std::move(done);
  job->counters.start_time = cluster_->sim()->Now();

  // `input_path` is a prefix: all HDFS files under it contribute splits
  // (FileInputFormat over a directory). One split per block.
  const std::vector<const hdfs::FileEntry*> files =
      hdfs_->name_node()->List(spec.input_path);
  if (files.empty()) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, [this, job] {
      const Status status =
          Status::NotFound("no input files under " + job->spec.input_path);
      job->done(status, job->counters);
      FireCompletionHooks(job->job_id, status, job->counters);
    });
    return job->job_id;
  }
  job->node_local.resize(cluster_->num_workers());
  for (const hdfs::FileEntry* file : files) {
    uint64_t offset = 0;
    for (const hdfs::BlockLocation& b : file->blocks) {
      Split split;
      split.path = file->path;
      split.offset = offset;
      split.bytes = b.bytes;
      split.hosts = b.nodes;
      offset += b.bytes;
      const size_t idx = job->splits.size();
      job->splits.push_back(std::move(split));
      job->pending.push_back(idx);
      for (uint32_t h : job->splits[idx].hosts) {
        job->node_local[h].push_back(idx);
      }
    }
  }
  job->started.assign(job->splits.size(), false);
  job->committed.assign(job->splits.size(), false);
  job->parked.assign(job->splits.size(), false);
  job->split_failures.assign(job->splits.size(), 0);
  job->reexec.assign(job->splits.size(), false);
  job->unstarted_maps = static_cast<uint32_t>(job->splits.size());

  if (spec.num_reduce_tasks == SimJobSpec::kOneWave) {
    job->num_reducers = slots_.reduce_slots * cluster_->num_workers();
  } else {
    job->num_reducers = spec.num_reduce_tasks;
  }

  if (job->splits.empty()) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, [this, job] {
      job->counters.end_time = SimTime{};
      const Status status = Status::InvalidArgument("empty input");
      job->done(status, job->counters);
      FireCompletionHooks(job->job_id, status, job->counters);
    });
    return job->job_id;
  }
  job->obs_label = (spec.name.empty() ? std::string("job") : spec.name) +
                   "#" + std::to_string(job->job_id);
  if (metrics_ != nullptr) {
    const obs::Labels labels{{"job", job->obs_label}};
    job->m_spills = metrics_->GetCounter("mr.job.spills", labels);
    job->m_shuffle_bytes = metrics_->GetCounter("mr.job.shuffle_bytes",
                                                labels);
    job->m_hdfs_read = metrics_->GetCounter("mr.job.hdfs_read_bytes", labels);
    job->m_hdfs_write = metrics_->GetCounter("mr.job.hdfs_write_bytes",
                                             labels);
  }
  jobs_.push_back(job);
  if (trace_) {
    job->span = trace_->BeginSpan(
        0, "mr", "job",
        "{\"job\":\"" + job->obs_label +
            "\",\"splits\":" + std::to_string(job->splits.size()) +
            ",\"reducers\":" + std::to_string(job->num_reducers) + "}");
  }
  DispatchMaps();
  MaybePreemptFor(job);
  return job->job_id;
}

uint32_t MrEngine::free_map_slot_count() const {
  uint32_t free = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    if (!node_dead_[n]) free += free_map_slots_[n];
  }
  return free;
}

uint32_t MrEngine::stale_map_attempts() const {
  uint32_t stale = 0;
  for (const auto& job : jobs_) {
    for (const auto& mt : job->running_map_tasks) {
      if (mt->epoch != node_epoch_[mt->node]) ++stale;
    }
  }
  return stale;
}

uint32_t MrEngine::speculative_running() const {
  uint32_t running = 0;
  for (const auto& job : jobs_) running += job->speculative_running;
  return running;
}

std::vector<sched::JobSchedState> MrEngine::SchedStates() const {
  std::vector<sched::JobSchedState> states;
  states.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    sched::JobSchedState s;
    s.job_id = job->job_id;
    s.seq = job->seq;
    s.pool = job->pool;
    s.weight = job->weight;
    s.runnable_maps = job->unstarted_maps;
    // Slots already marked for reclaim are as good as free: not counting
    // them keeps a victim from being penalized twice.
    s.running_maps = job->running_maps - job->preempt_marked;
    s.runnable_reduces = static_cast<uint32_t>(job->reduce_queue.size());
    s.running_reduces = job->running_reduces;
    // Likewise: a backup already marked for reclaim is no longer a free
    // slot the speculative-first pass could harvest.
    s.speculative_running = job->speculative_running -
                            job->spec_preempt_marked;
    states.push_back(std::move(s));
  }
  return states;
}

void MrEngine::DispatchMaps() {
  if (jobs_.empty()) return;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t node = 0; node < cluster_->num_workers(); ++node) {
      if (node_dead_[node] || node_blacklisted_[node] ||
          free_map_slots_[node] == 0) {
        continue;
      }
      const size_t pick = sched_->PickJob(sched::SlotKind::kMap,
                                          SchedStates());
      if (pick == sched::Scheduler::kNoJob) {
        // No regular map wants a slot; spare capacity goes to backups.
        DispatchSpeculative();
        return;
      }
      BDIO_CHECK(pick < jobs_.size());
      const std::shared_ptr<Job> job = jobs_[pick];
      // Node-local split first.
      size_t idx = SIZE_MAX;
      bool local = false;
      auto& local_q = job->node_local[node];
      while (!local_q.empty()) {
        const size_t cand = local_q.front();
        local_q.pop_front();
        if (!job->started[cand]) {
          idx = cand;
          local = true;
          break;
        }
      }
      if (idx == SIZE_MAX) {
        while (!job->pending.empty()) {
          const size_t cand = job->pending.front();
          job->pending.pop_front();
          if (!job->started[cand]) {
            idx = cand;
            break;
          }
        }
      }
      // The policy only picks jobs with runnable maps, and `pending` holds
      // every unstarted split.
      BDIO_CHECK(idx != SIZE_MAX);
      job->started[idx] = true;
      BDIO_CHECK(job->unstarted_maps > 0);
      --job->unstarted_maps;
      --free_map_slots_[node];
      ++job->counters.maps_launched;
      if (local) ++job->counters.maps_local;
      StartMapTask(job, node, idx);
      progress = true;
    }
  }
}

void MrEngine::DispatchSpeculative() {
  if (jobs_.empty()) return;
  const SimTime now = cluster_->sim()->Now();
  for (uint32_t node = 0; node < cluster_->num_workers(); ++node) {
    while (!node_dead_[node] && !node_blacklisted_[node] &&
           free_map_slots_[node] > 0) {
      // First straggler in (admission order, launch order) that can accept
      // a backup on this node — a pure function of engine state, so the
      // pick is deterministic.
      std::shared_ptr<Job> owner;
      std::shared_ptr<MapTask> straggler;
      for (const auto& job : jobs_) {
        if (job->finished || !job->spec.speculative_execution) continue;
        if (job->maps_done == 0) continue;  // no duration baseline yet
        const double threshold =
            static_cast<double>(job->map_duration.ns()) /
            static_cast<double>(job->maps_done) *
            job->spec.speculative_slowdown;
        for (const auto& mt : job->running_map_tasks) {
          if (mt->speculative || mt->preempted || mt->cancelled ||
              mt->crashed) {
            continue;
          }
          if (mt->epoch != node_epoch_[mt->node]) continue;
          if (mt->node == node) continue;  // back up on a different node
          if (job->committed[mt->split_idx]) continue;
          if (static_cast<double>((now - mt->start_time).ns()) <= threshold) {
            continue;
          }
          if (HasLiveAttempt(job, mt->split_idx, mt)) continue;  // one backup
          owner = job;
          straggler = mt;
          break;
        }
        if (straggler) break;
      }
      if (!straggler) break;  // nothing for this node; try the next
      --free_map_slots_[node];
      ++owner->counters.maps_launched;
      ++owner->counters.speculative_launched;
      ++owner->speculative_running;
      ++speculative_launched_;
      if (m_spec_launched_) m_spec_launched_->Inc();
      StartMapTask(owner, node, straggler->split_idx, /*speculative=*/true);
    }
  }
}

bool MrEngine::HasLiveAttempt(const std::shared_ptr<Job>& job,
                              size_t split_idx,
                              const std::shared_ptr<MapTask>& except) const {
  for (const auto& other : job->running_map_tasks) {
    if (other == except) continue;
    if (other->split_idx != split_idx) continue;
    if (other->epoch != node_epoch_[other->node]) continue;
    return true;
  }
  return false;
}

void MrEngine::MaybePreemptFor(const std::shared_ptr<Job>& job) {
  if (job->finished || job->running_maps > 0 || job->unstarted_maps == 0) {
    return;
  }
  // The job is starved: it wants map slots and holds none (DispatchMaps
  // just ran, so none are free either). Ask the policy for victims until
  // the job's weighted share of live map slots is marked for reclaim.
  uint32_t live_slots = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    if (!node_dead_[n]) live_slots += slots_.map_slots;
  }
  double total_weight = 0;
  for (const auto& j : jobs_) {
    total_weight += j->weight <= 0 ? 1.0 : j->weight;
  }
  if (total_weight <= 0) return;
  const double w = job->weight <= 0 ? 1.0 : job->weight;
  const uint32_t share = std::max<uint32_t>(
      1, static_cast<uint32_t>(static_cast<double>(live_slots) * w /
                               total_weight));
  const uint32_t want = std::min<uint32_t>(share, job->unstarted_maps);
  uint32_t reclaimed = 0;
  while (reclaimed < want) {
    const size_t victim = sched_->PreemptionVictim(SchedStates());
    if (victim == sched::Scheduler::kNoJob) return;
    BDIO_CHECK(victim < jobs_.size());
    const std::shared_ptr<Job>& vjob = jobs_[victim];
    // Reclaim a live speculative backup when the victim holds one — it
    // loses no unique work (the original still runs). Otherwise the most
    // recently launched live attempt: it has the least work to lose.
    std::shared_ptr<MapTask> target;
    for (auto it = vjob->running_map_tasks.rbegin();
         it != vjob->running_map_tasks.rend(); ++it) {
      if ((*it)->preempted || (*it)->crashed ||
          (*it)->epoch != node_epoch_[(*it)->node]) {
        continue;
      }
      if ((*it)->speculative) {
        target = *it;
        break;
      }
      if (!target) target = *it;
    }
    if (!target) return;
    target->preempted = true;
    ++vjob->preempt_marked;
    if (target->speculative) ++vjob->spec_preempt_marked;
    ++reclaimed;
  }
}

void MrEngine::OnMapPreempted(std::shared_ptr<Job> job,
                              std::shared_ptr<MapTask> mt) {
  BDIO_CHECK(mt->preempted);
  BDIO_CHECK(mt->epoch == node_epoch_[mt->node]);
  BDIO_CHECK(running_maps_ > 0);
  --running_maps_;
  BDIO_CHECK(job->running_maps > 0);
  --job->running_maps;
  BDIO_CHECK(job->preempt_marked > 0);
  --job->preempt_marked;
  if (mt->speculative) {
    BDIO_CHECK(job->speculative_running > 0);
    --job->speculative_running;
    BDIO_CHECK(job->spec_preempt_marked > 0);
    --job->spec_preempt_marked;
  }
  auto& rmt = job->running_map_tasks;
  rmt.erase(std::remove(rmt.begin(), rmt.end(), mt), rmt.end());
  if (trace_) {
    trace_->EndSpan(mt->span);
    trace_->FlowEnd(mt->flow, mt->node + 1);
  }
  // The attempt abandons: partial spills are purged, the split re-queues
  // (unless it is already committed, or a rival attempt still runs — a
  // backup whose original is gone must requeue, and an original whose
  // backup survives must not), and the slot goes back to the pool for the
  // policy to re-grant.
  for (const RunFile& r : mt->spills) {
    BDIO_CHECK_OK(r.fs->Delete(r.file->name()));
  }
  mt->spills.clear();
  ++free_map_slots_[mt->node];
  ++job->counters.maps_preempted;
  if (m_preempted_maps_) m_preempted_maps_->Inc();
  if (!job->committed[mt->split_idx] &&
      !HasLiveAttempt(job, mt->split_idx, mt)) {
    job->started[mt->split_idx] = false;
    job->pending.push_back(mt->split_idx);
    ++job->unstarted_maps;
  }
  DispatchMaps();
  MaybeFinishJob(job);  // a failing job may have been waiting on this drain
}

void MrEngine::OnMapFailed(std::shared_ptr<Job> job,
                           std::shared_ptr<MapTask> mt) {
  BDIO_CHECK(mt->crashed);
  BDIO_CHECK(mt->epoch == node_epoch_[mt->node]);
  BDIO_CHECK(running_maps_ > 0);
  --running_maps_;
  BDIO_CHECK(job->running_maps > 0);
  --job->running_maps;
  if (mt->preempted) {
    // Reclaim mark and crash both hit this attempt; the mark lapses.
    BDIO_CHECK(job->preempt_marked > 0);
    --job->preempt_marked;
    if (mt->speculative) {
      BDIO_CHECK(job->spec_preempt_marked > 0);
      --job->spec_preempt_marked;
    }
  }
  if (mt->speculative) {
    BDIO_CHECK(job->speculative_running > 0);
    --job->speculative_running;
  }
  auto& rmt = job->running_map_tasks;
  rmt.erase(std::remove(rmt.begin(), rmt.end(), mt), rmt.end());
  if (trace_) {
    trace_->EndSpan(mt->span);
    trace_->FlowEnd(mt->flow, mt->node + 1);
  }
  // Everything the crashed attempt did is wasted work: its input reads
  // plus the spills purged here (the TaskTracker cleans a FAILED attempt's
  // work directory).
  uint64_t wasted = mt->pos;
  for (const RunFile& r : mt->spills) {
    wasted += r.bytes;
    BDIO_CHECK_OK(r.fs->Delete(r.file->name()));
  }
  mt->spills.clear();
  ++free_map_slots_[mt->node];
  ++job->counters.task_failures;
  ++task_failures_;
  if (m_retry_failures_) m_retry_failures_->Inc();
  job->counters.wasted_work_bytes += wasted;
  wasted_work_bytes_ += wasted;
  if (m_retry_wasted_) m_retry_wasted_->Add(wasted);
  if (trace_) {
    trace_->Instant(mt->node + 1, "mr", "task-crashed",
                    "{\"split\":" + std::to_string(mt->split_idx) +
                        ",\"wasted\":" + std::to_string(wasted) +
                        ",\"job\":\"" + job->obs_label + "\"}");
  }
  StrikeNode(mt->node);
  const size_t idx = mt->split_idx;
  ++job->split_failures[idx];
  if (job->failing || job->committed[idx] || HasLiveAttempt(job, idx, mt)) {
    // The split is settled (or a rival attempt still runs): a FAILED
    // attempt of a settled split charges the budget but re-queues nothing.
  } else if (job->split_failures[idx] < job->spec.max_task_attempts) {
    ParkSplit(job, idx);
  } else if (static_cast<double>(job->counters.splits_abandoned + 1) *
                 100.0 <=
             job->spec.max_failures_percent *
                 static_cast<double>(job->splits.size())) {
    AbandonSplit(job, idx);
  } else {
    FailJob(job, idx);
  }
  DispatchMaps();
  MaybeFinishJob(job);
}

void MrEngine::ParkSplit(std::shared_ptr<Job> job, size_t split_idx) {
  BDIO_CHECK(job->started[split_idx]);
  BDIO_CHECK(!job->parked[split_idx]);
  job->parked[split_idx] = true;
  ++job->parked_splits;
  ++job->counters.retries_scheduled;
  ++retries_scheduled_;
  if (m_retry_scheduled_) m_retry_scheduled_->Inc();
  // Capped exponential backoff: base << (failures-1), clamped, plus a
  // small jitter from the engine's forked Rng (drawn in sim-event order,
  // so the schedule is identical at every --jobs level).
  const uint32_t failures = job->split_failures[split_idx];
  SimDuration delay = job->spec.retry_backoff_base;
  for (uint32_t k = 1; k < failures && delay < job->spec.retry_backoff_cap;
       ++k) {
    delay *= 2;
  }
  delay = std::min(delay, job->spec.retry_backoff_cap);
  delay += SimDuration(retry_rng_.Uniform(
      std::max<uint64_t>(1, (job->spec.retry_backoff_base / 8).ns())));
  cluster_->sim()->ScheduleAfter(delay, [this, job, split_idx] {
    if (job->finished || job->failing) return;
    if (!job->parked[split_idx]) return;  // abandoned or written off
    job->parked[split_idx] = false;
    --job->parked_splits;
    if (job->committed[split_idx]) return;
    job->started[split_idx] = false;
    job->pending.push_back(split_idx);
    ++job->unstarted_maps;
    DispatchMaps();
  });
}

void MrEngine::AbandonSplit(const std::shared_ptr<Job>& job,
                            size_t split_idx) {
  BDIO_CHECK(!job->committed[split_idx]);
  if (!job->started[split_idx]) {
    job->started[split_idx] = true;
    BDIO_CHECK(job->unstarted_maps > 0);
    --job->unstarted_maps;
  }
  if (job->parked[split_idx]) {
    job->parked[split_idx] = false;
    --job->parked_splits;
  }
  // The split counts as done with no output: the job commits with partial
  // input (Hadoop's mapred.max.map.failures.percent).
  job->committed[split_idx] = true;
  ++job->maps_done;
  ++job->counters.splits_abandoned;
  ++splits_abandoned_;
  if (m_retry_abandoned_) m_retry_abandoned_->Inc();
  if (trace_) {
    trace_->Instant(0, "mr", "split-abandoned",
                    "{\"split\":" + std::to_string(split_idx) +
                        ",\"job\":\"" + job->obs_label + "\"}");
  }
  for (const auto& other : job->running_map_tasks) {
    if (other->split_idx == split_idx) other->cancelled = true;
  }
  MaybeStartReducers(job);
  DispatchReduces();
  for (auto& rt : job->reducers) {
    PumpShuffle(job, rt);
    MaybeFinishShuffle(job, rt);
  }
}

void MrEngine::FailJob(const std::shared_ptr<Job>& job, size_t split_idx) {
  BDIO_CHECK(!job->failing);
  job->failing = true;
  job->failure = Status::ResourceExhausted(
      "map task " + std::to_string(split_idx) + " of job '" +
      job->obs_label + "' exhausted " +
      std::to_string(job->spec.max_task_attempts) + " attempts");
  if (trace_) {
    trace_->Instant(0, "mr", "job-failed",
                    "{\"split\":" + std::to_string(split_idx) +
                        ",\"job\":\"" + job->obs_label + "\"}");
  }
  // Write off every unfinished split so the shuffle barrier opens and the
  // job drains: reducers (and in-flight committed writes) complete with
  // the partial data they have, then MaybeFinishJob reports the failure.
  for (size_t i = 0; i < job->splits.size(); ++i) {
    if (job->committed[i]) continue;
    if (!job->started[i]) {
      job->started[i] = true;
      BDIO_CHECK(job->unstarted_maps > 0);
      --job->unstarted_maps;
    }
    if (job->parked[i]) {
      job->parked[i] = false;
      --job->parked_splits;
    }
    job->committed[i] = true;
    ++job->maps_done;
  }
  // Running attempts abandon at their next boundary; their I/O becomes
  // wasted work (not speculative waste) in DiscardMapAttempt.
  for (const auto& mt : job->running_map_tasks) {
    if (!mt->preempted && !mt->crashed) mt->cancelled = true;
  }
  MaybeStartReducers(job);
  DispatchReduces();
  for (auto& rt : job->reducers) {
    PumpShuffle(job, rt);
    MaybeFinishShuffle(job, rt);
  }
}

void MrEngine::CommitMapAttempt(const std::shared_ptr<Job>& job,
                                const std::shared_ptr<MapTask>& mt) {
  job->committed[mt->split_idx] = true;
  job->reexec[mt->split_idx] = false;  // the lost output has been remade
  for (const auto& other : job->running_map_tasks) {
    if (other == mt || other->split_idx != mt->split_idx) continue;
    other->cancelled = true;  // abandons at its next chunk boundary
  }
}

void MrEngine::DiscardMapAttempt(std::shared_ptr<Job> job,
                                 std::shared_ptr<MapTask> mt) {
  BDIO_CHECK(mt->epoch == node_epoch_[mt->node]);
  BDIO_CHECK(running_maps_ > 0);
  --running_maps_;
  BDIO_CHECK(job->running_maps > 0);
  --job->running_maps;
  if (mt->preempted) {
    // Reclaim mark and commit race both hit this attempt; the mark lapses.
    BDIO_CHECK(job->preempt_marked > 0);
    --job->preempt_marked;
    if (mt->speculative) {
      BDIO_CHECK(job->spec_preempt_marked > 0);
      --job->spec_preempt_marked;
    }
  }
  if (mt->speculative) {
    BDIO_CHECK(job->speculative_running > 0);
    --job->speculative_running;
  }
  auto& rmt = job->running_map_tasks;
  rmt.erase(std::remove(rmt.begin(), rmt.end(), mt), rmt.end());
  if (trace_) {
    trace_->EndSpan(mt->span);
    trace_->FlowEnd(mt->flow, mt->node + 1);
  }
  // Everything the loser did is duplicate I/O: the input bytes it read
  // plus the spills it wrote (deleted here, as Hadoop's TaskTracker purges
  // a killed attempt's work directory).
  uint64_t wasted = mt->pos;
  for (const RunFile& r : mt->spills) {
    wasted += r.bytes;
    BDIO_CHECK_OK(r.fs->Delete(r.file->name()));
  }
  mt->spills.clear();
  ++free_map_slots_[mt->node];
  if (job->failing) {
    // Aborted by the job's failure drain, not a speculative race: the
    // attempt's I/O is wasted work, not speculation accounting.
    job->counters.wasted_work_bytes += wasted;
    wasted_work_bytes_ += wasted;
    if (m_retry_wasted_) m_retry_wasted_->Add(wasted);
  } else {
    ++job->counters.speculative_killed;
    job->counters.speculative_wasted_bytes += wasted;
    ++speculative_killed_;
    speculative_wasted_bytes_ += wasted;
    if (m_spec_killed_) m_spec_killed_->Inc();
    if (m_spec_wasted_) m_spec_wasted_->Add(wasted);
    if (trace_) {
      trace_->Instant(mt->node + 1, "mr", "speculative-killed",
                      "{\"split\":" + std::to_string(mt->split_idx) +
                          ",\"wasted\":" + std::to_string(wasted) +
                          ",\"job\":\"" + job->obs_label + "\"}");
    }
  }
  DispatchMaps();
  MaybeFinishJob(job);  // a failing job may have been waiting on this drain
}

void MrEngine::DispatchReduces() {
  while (true) {
    const size_t pick = sched_->PickJob(sched::SlotKind::kReduce,
                                        SchedStates());
    if (pick == sched::Scheduler::kNoJob) return;  // no queued reducer left
    BDIO_CHECK(pick < jobs_.size());
    const std::shared_ptr<Job> job = jobs_[pick];
    // Round-robin slot hunt from the job's cursor (dead nodes hold zero
    // free slots).
    uint32_t node = UINT32_MAX;
    for (uint32_t k = 0; k < cluster_->num_workers(); ++k) {
      const uint32_t cand =
          (job->next_reduce_node + k) % cluster_->num_workers();
      if (!node_blacklisted_[cand] && free_reduce_slots_[cand] > 0) {
        node = cand;
        break;
      }
    }
    if (node == UINT32_MAX) return;  // all slots busy
    job->next_reduce_node = node + 1;
    --free_reduce_slots_[node];
    auto rt = std::move(job->reduce_queue.front());
    job->reduce_queue.pop_front();
    rt->node = node;
    ++job->counters.reduces_launched;
    ++running_reduces_;
    ++job->running_reduces;
    if (trace_) {
      rt->flow = trace_->NewFlow();
      rt->span = trace_->BeginSpan(
          node + 1, "mr", "reduce-task",
          "{\"idx\":" + std::to_string(rt->idx) + ",\"job\":\"" +
              job->obs_label + "\"}");
      trace_->FlowStart(rt->flow, node + 1);
    }
    job->reducers.push_back(rt);
    cluster_->sim()->ScheduleAfter(
        job->spec.task_start_latency, [this, job, rt] {
          PumpShuffle(job, rt);
          MaybeFinishShuffle(job, rt);
        });
  }
}

void MrEngine::StartMapTask(std::shared_ptr<Job> job, uint32_t node,
                            size_t split_idx, bool speculative) {
  auto mt = std::make_shared<MapTask>();
  mt->split_idx = split_idx;
  mt->node = node;
  mt->epoch = node_epoch_[node];
  mt->speculative = speculative;
  mt->reexec = job->reexec[split_idx];
  mt->start_time = cluster_->sim()->Now();
  ++running_maps_;
  ++job->running_maps;
  job->running_map_tasks.push_back(mt);
  mt->input_path = job->splits[split_idx].path;
  mt->split_bytes = job->splits[split_idx].bytes;
  mt->split_offset = job->splits[split_idx].offset;
  if (trace_) {
    mt->flow = trace_->NewFlow();
    mt->span = trace_->BeginSpan(
        node + 1, "mr", "map-task",
        "{\"split\":" + std::to_string(split_idx) + ",\"bytes\":" +
            std::to_string(mt->split_bytes) + ",\"job\":\"" +
            job->obs_label + "\"}");
    trace_->FlowStart(mt->flow, node + 1);
  }
  cluster_->sim()->ScheduleAfter(job->spec.task_start_latency,
                                 [this, job, mt] { MapReadLoop(job, mt); });
}

void MrEngine::MapReadLoop(std::shared_ptr<Job> job,
                           std::shared_ptr<MapTask> mt) {
  // Pipeline prologue: fetch the first chunk, then enter the steady state
  // where chunk k's CPU work overlaps chunk k+1's read (the record reader
  // runs ahead of the map function, as in real Hadoop).
  if (mt->preempted && mt->epoch == node_epoch_[mt->node]) {
    OnMapPreempted(job, mt);
    return;
  }
  if (mt->cancelled && mt->epoch == node_epoch_[mt->node]) {
    DiscardMapAttempt(job, mt);  // lost the commit race mid-task
    return;
  }
  if (mt->crashed && mt->epoch == node_epoch_[mt->node]) {
    OnMapFailed(job, mt);  // crash-task fault hit this attempt
    return;
  }
  if (mt->pos >= mt->split_bytes) {
    MapSpill(job, mt, [this, job, mt] { MapFinish(job, mt); });
    return;
  }
  const uint64_t n = std::min(kTaskChunk, mt->split_bytes - mt->pos);
  obs::FlowScope flow_scope(trace_, mt->flow);
  hdfs_->Read(mt->input_path, mt->split_offset + mt->pos, n, mt->node,
              [this, job, mt, n](Status s) {
                BDIO_CHECK_OK(s);
                job->counters.hdfs_read_bytes += n;
                if (job->m_hdfs_read) job->m_hdfs_read->Add(n);
                if (mt->reexec) {
                  job->counters.reexec_read_bytes += n;
                  reexec_read_bytes_ += n;
                  if (m_reexec_read_) m_reexec_read_->Add(n);
                }
                MapProcessChunk(job, mt, n);
              });
}

void MrEngine::MapProcessChunk(std::shared_ptr<Job> job,
                               std::shared_ptr<MapTask> mt,
                               uint64_t chunk_bytes) {
  // Invariant: the chunk at mt->pos (of chunk_bytes) has been read.
  const uint64_t next_pos = mt->pos + chunk_bytes;
  const uint64_t next_n =
      next_pos < mt->split_bytes
          ? std::min(kTaskChunk, mt->split_bytes - next_pos)
          : 0;

  auto cont = sim::Latch::Create(2, [this, job, mt, chunk_bytes, next_n] {
    mt->pos += chunk_bytes;
    if (mt->preempted && mt->epoch == node_epoch_[mt->node]) {
      // Chunk boundary: a reclaimed attempt abandons here (its in-flight
      // I/O has drained, as in the failure model).
      OnMapPreempted(job, mt);
      return;
    }
    if (mt->cancelled && mt->epoch == node_epoch_[mt->node]) {
      DiscardMapAttempt(job, mt);  // a rival attempt committed this split
      return;
    }
    if (mt->crashed && mt->epoch == node_epoch_[mt->node]) {
      OnMapFailed(job, mt);  // crash-task fault hit this attempt
      return;
    }
    const double out_pre =
        static_cast<double>(chunk_bytes) * job->spec.map_output_ratio;
    auto proceed = [this, job, mt, next_n] {
      if (next_n == 0) {
        MapSpill(job, mt, [this, job, mt] { MapFinish(job, mt); });
      } else {
        MapProcessChunk(job, mt, next_n);
      }
    };
    if (!job->map_only()) {
      mt->buffer_bytes += static_cast<uint64_t>(out_pre);
      if (mt->buffer_bytes >= job->spec.sort_buffer_bytes) {
        MapSpill(job, mt, std::move(proceed));
        return;
      }
    }
    proceed();
  });

  // Arm 1: prefetch the next chunk while this one is processed.
  if (next_n > 0) {
    job->counters.hdfs_read_bytes += next_n;
    if (job->m_hdfs_read) job->m_hdfs_read->Add(next_n);
    if (mt->reexec) {
      job->counters.reexec_read_bytes += next_n;
      reexec_read_bytes_ += next_n;
      if (m_reexec_read_) m_reexec_read_->Add(next_n);
    }
    obs::FlowScope flow_scope(trace_, mt->flow);
    hdfs_->Read(mt->input_path, mt->split_offset + next_pos, next_n,
                mt->node, [cont](Status s) {
                  BDIO_CHECK_OK(s);
                  cont->Arrive();
                });
  } else {
    cont->Arrive();
  }

  // Arm 2: CPU for the current chunk.
  const double out_pre =
      static_cast<double>(chunk_bytes) * job->spec.map_output_ratio;
  double cpu_ns =
      static_cast<double>(chunk_bytes) * job->spec.map_cpu_ns_per_byte;
  if (job->spec.compress_intermediate && !job->map_only()) {
    cpu_ns += out_pre * job->spec.compress_cpu_ns_per_byte;
  }
  cluster_->node(mt->node)->cpu()->Run(static_cast<SimDuration>(cpu_ns),
                                       cont->Arm());
}

void MrEngine::MapSpill(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt,
                        std::function<void()> then) {
  const uint64_t pre = mt->buffer_bytes;
  mt->buffer_bytes = 0;
  if (pre == 0 || job->map_only()) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, std::move(then));
    return;
  }
  double post_d = static_cast<double>(pre) * job->spec.combine_ratio;
  if (job->spec.compress_intermediate) post_d *= job->spec.compress_ratio;
  // Even a fully-combined spill writes at least a few KB of framing.
  const uint64_t post =
      std::max<uint64_t>(static_cast<uint64_t>(post_d), 4096);
  os::FileSystem* fs = cluster_->node(mt->node)->NextMrFs();
  auto file = fs->Create("spill_" + std::to_string(file_seq_++));
  BDIO_CHECK(file.ok()) << file.status().ToString();
  file.value()->set_io_tag(static_cast<uint32_t>(IoTag::kMapSpill));
  file.value()->set_owner_job(job->job_id + 1);
  ++job->counters.spills;
  job->counters.intermediate_write_bytes += post;
  if (mt->reexec) {
    job->counters.reexec_write_bytes += post;
    reexec_write_bytes_ += post;
    if (m_reexec_write_) m_reexec_write_->Add(post);
  }
  if (m_map_spills_) m_map_spills_->Inc();
  if (job->m_spills) job->m_spills->Inc();
  uint64_t span = 0;
  if (trace_) {
    span = trace_->BeginSpan(mt->node + 1, "mr", "spill",
                             "{\"bytes\":" + std::to_string(post) + "}");
  }
  AppendStream(
      cluster_->sim(), fs, file.value(), post, kTaskChunk,
      [this, mt, fs, f = file.value(), post, span,
       then = std::move(then)] {
        if (trace_) trace_->EndSpan(span);
        mt->spills.push_back(RunFile{fs, f, post});
        then();
      },
      trace_, mt->flow);
}

void MrEngine::MapFinish(std::shared_ptr<Job> job,
                         std::shared_ptr<MapTask> mt) {
  if (mt->epoch != node_epoch_[mt->node]) {
    // The host failed while this task ran: discard its work.
    OnMapDone(job, mt);
    return;
  }
  if (job->committed[mt->split_idx]) {
    // Beaten at the finish line by a rival attempt.
    DiscardMapAttempt(job, mt);
    return;
  }
  if (mt->crashed) {
    // The crash landed between the last chunk and the commit: the attempt
    // still fails (Hadoop reports the attempt lost, not its output).
    OnMapFailed(job, mt);
    return;
  }
  if (job->map_only()) {
    // Map-only jobs write their output slice straight to HDFS. The split
    // is claimed *before* the write so a rival attempt never races the
    // same output path.
    CommitMapAttempt(job, mt);
    const uint64_t out = static_cast<uint64_t>(
        static_cast<double>(mt->split_bytes) * job->spec.output_ratio);
    if (out == 0) {
      OnMapDone(job, mt);
      return;
    }
    const std::string path = job->spec.output_path + "/part-m-" +
                             std::to_string(mt->split_idx);
    obs::FlowScope flow_scope(trace_, mt->flow);
    hdfs_->WriteReplicated(
        path, out, mt->node, job->spec.output_replication,
        [this, job, mt, out, path](Status s) {
          BDIO_CHECK_OK(s);
          if (mt->epoch != node_epoch_[mt->node]) {
            // Host failed during the write: withdraw the attempt's output
            // (and its claim) so the re-execution can commit its own.
            BDIO_CHECK_OK(hdfs_->Delete(path));
            job->committed[mt->split_idx] = false;
            OnMapDone(job, mt);
            return;
          }
          job->counters.hdfs_write_bytes += out;
          if (job->m_hdfs_write) job->m_hdfs_write->Add(out);
          ++job->map_outputs_written;
          OnMapDone(job, mt);
        });
    return;
  }

  if (mt->spills.size() <= 1) {
    CommitMapAttempt(job, mt);
    MapOutput mo;
    mo.node = mt->node;
    mo.split_idx = mt->split_idx;
    if (!mt->spills.empty()) {
      mo.fs = mt->spills[0].fs;
      mo.file = mt->spills[0].file;
      mo.bytes = mt->spills[0].bytes;
    }
    job->map_outputs.push_back(mo);
    OnMapDone(job, mt);
    return;
  }

  // Multi-spill merge: interleaved chunk reads across the spill files,
  // streaming into a single merged map-output file.
  uint64_t total = 0;
  for (const RunFile& r : mt->spills) total += r.bytes;
  os::FileSystem* out_fs = cluster_->node(mt->node)->NextMrFs();
  auto out_file = out_fs->Create("map_out_" + std::to_string(file_seq_++));
  BDIO_CHECK(out_file.ok()) << out_file.status().ToString();
  out_file.value()->set_io_tag(static_cast<uint32_t>(IoTag::kMapOutput));
  out_file.value()->set_owner_job(job->job_id + 1);
  if (m_merge_width_) {
    m_merge_width_->Observe(static_cast<double>(mt->spills.size()));
  }
  uint64_t merge_span = 0;
  if (trace_) {
    merge_span = trace_->BeginSpan(
        mt->node + 1, "mr", "merge-pass",
        "{\"width\":" + std::to_string(mt->spills.size()) + ",\"bytes\":" +
            std::to_string(total) + "}");
  }

  struct MergeState {
    std::vector<RunFile> inputs;
    std::vector<uint64_t> pos;
    size_t cursor = 0;
  };
  auto ms = std::make_shared<MergeState>();
  ms->inputs = mt->spills;
  ms->pos.assign(mt->spills.size(), 0);

  auto step = std::make_shared<std::function<void()>>();
  auto finish = [this, job, mt, out_fs, out = out_file.value(), total,
                 merge_span, step] {
    *step = nullptr;  // break the cycle (safe: invoked via event queue)
    if (trace_) trace_->EndSpan(merge_span);
    if (mt->epoch != node_epoch_[mt->node]) {
      OnMapDone(job, mt);  // host failed mid-merge: discard
      return;
    }
    if (job->committed[mt->split_idx]) {
      // A rival committed while this attempt merged: the merged output is
      // pure waste on top of the spills DiscardMapAttempt purges.
      BDIO_CHECK_OK(out_fs->Delete(out->name()));
      if (job->failing) {
        job->counters.wasted_work_bytes += total;
        wasted_work_bytes_ += total;
        if (m_retry_wasted_) m_retry_wasted_->Add(total);
      } else {
        job->counters.speculative_wasted_bytes += total;
        speculative_wasted_bytes_ += total;
        if (m_spec_wasted_) m_spec_wasted_->Add(total);
      }
      DiscardMapAttempt(job, mt);
      return;
    }
    CommitMapAttempt(job, mt);
    for (const RunFile& r : mt->spills) {
      BDIO_CHECK_OK(r.fs->Delete(r.file->name()));
    }
    MapOutput mo;
    mo.node = mt->node;
    mo.split_idx = mt->split_idx;
    mo.fs = out_fs;
    mo.file = out;
    mo.bytes = total;
    job->map_outputs.push_back(mo);
    OnMapDone(job, mt);
  };
  *step = [this, job, ms, out_fs, out = out_file.value(), flow = mt->flow,
           step, finish] {
    // Pick the next input with data remaining, round-robin.
    size_t picked = SIZE_MAX;
    for (size_t k = 0; k < ms->inputs.size(); ++k) {
      const size_t i = (ms->cursor + k) % ms->inputs.size();
      if (ms->pos[i] < ms->inputs[i].bytes) {
        picked = i;
        break;
      }
    }
    if (picked == SIZE_MAX) {
      cluster_->sim()->ScheduleAfter(SimDuration{}, finish);
      return;
    }
    ms->cursor = picked + 1;
    const RunFile& in = ms->inputs[picked];
    const uint64_t n = std::min(kTaskChunk, in.bytes - ms->pos[picked]);
    job->counters.intermediate_read_bytes += n;
    obs::FlowScope flow_scope(trace_, flow);
    in.fs->Read(in.file, ms->pos[picked], n,
                [this, job, ms, picked, n, out_fs, out, flow, step] {
                  ms->pos[picked] += n;
                  job->counters.intermediate_write_bytes += n;
                  obs::FlowScope flow_scope(trace_, flow);
                  out_fs->Append(out, n, [step] {
                    if (*step) (*step)();
                  });
                });
  };
  (*step)();
}

void MrEngine::OnMapDone(std::shared_ptr<Job> job,
                         std::shared_ptr<MapTask> mt) {
  BDIO_CHECK(running_maps_ > 0);
  --running_maps_;
  BDIO_CHECK(job->running_maps > 0);
  --job->running_maps;
  if (mt->preempted) {
    // Marked for reclaim but completed (or died) first; the mark lapses.
    BDIO_CHECK(job->preempt_marked > 0);
    --job->preempt_marked;
    if (mt->speculative) {
      BDIO_CHECK(job->spec_preempt_marked > 0);
      --job->spec_preempt_marked;
    }
  }
  if (mt->speculative) {
    BDIO_CHECK(job->speculative_running > 0);
    --job->speculative_running;
  }
  auto& rmt = job->running_map_tasks;
  rmt.erase(std::remove(rmt.begin(), rmt.end(), mt), rmt.end());
  if (trace_) {
    trace_->EndSpan(mt->span);
    trace_->FlowEnd(mt->flow, mt->node + 1);
  }
  if (mt->epoch != node_epoch_[mt->node]) {
    // Discarded attempt: put the split back and try elsewhere (unless a
    // rival attempt already committed it, or still can). The dead node's
    // slot is not returned. Everything the stranded attempt read and
    // spilled drained for nothing.
    uint64_t wasted = mt->pos;
    for (const RunFile& r : mt->spills) wasted += r.bytes;
    job->counters.wasted_work_bytes += wasted;
    wasted_work_bytes_ += wasted;
    if (m_retry_wasted_) m_retry_wasted_->Add(wasted);
    if (!job->committed[mt->split_idx] &&
        !HasLiveAttempt(job, mt->split_idx, mt)) {
      job->started[mt->split_idx] = false;
      job->pending.push_back(mt->split_idx);
      ++job->unstarted_maps;
    }
    DispatchMaps();
    MaybeFinishJob(job);  // a failing job may have been waiting this drain
    return;
  }
  ++free_map_slots_[mt->node];
  ++job->maps_done;
  job->map_duration += cluster_->sim()->Now() - mt->start_time;
  MaybeStartReducers(job);
  DispatchReduces();
  for (auto& rt : job->reducers) {
    PumpShuffle(job, rt);
    MaybeFinishShuffle(job, rt);
  }
  DispatchMaps();
  MaybeFinishJob(job);
}

// ---------------------------------------------------------------------------
// Reduce side
// ---------------------------------------------------------------------------

void MrEngine::MaybeStartReducers(std::shared_ptr<Job> job) {
  // Creation only (slow-start gate); DispatchReduces hands out the slots.
  if (job->map_only() || job->num_reducers == 0) return;
  if (job->reducers_created) return;
  const uint32_t threshold = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(job->spec.reduce_slowstart *
                                         job->splits.size())));
  if (job->maps_done < threshold) return;
  job->reducers_created = true;
  for (uint32_t r = 0; r < job->num_reducers; ++r) {
    auto rt = std::make_shared<ReduceTask>();
    rt->idx = r;
    job->reduce_queue.push_back(std::move(rt));
  }
}

void MrEngine::PumpShuffle(std::shared_ptr<Job> job,
                           std::shared_ptr<ReduceTask> rt) {
  if (rt->dead || rt->merging || rt->spilling) return;
  while (rt->inflight < job->spec.parallel_copies &&
         rt->next_output < job->map_outputs.size()) {
    const MapOutput& mo = job->map_outputs[rt->next_output++];
    const uint64_t seg = mo.bytes / job->num_reducers;
    if (seg == 0 || mo.file == nullptr) continue;
    ++rt->inflight;
    const uint64_t offset = seg * rt->idx;
    job->counters.intermediate_read_bytes += seg;
    if (m_shuffle_bytes_) m_shuffle_bytes_->Add(seg);
    if (job->m_shuffle_bytes) job->m_shuffle_bytes->Add(seg);
    // Each fetch is its own flow: source-disk read -> wire -> arrival.
    uint64_t fetch_flow = 0;
    uint64_t fetch_span = 0;
    if (trace_) {
      fetch_flow = trace_->NewFlow();
      fetch_span = trace_->BeginSpan(
          rt->node + 1, "mr", "shuffle-fetch",
          "{\"src\":" + std::to_string(mo.node) + ",\"bytes\":" +
              std::to_string(seg) + "}");
      trace_->FlowStart(fetch_flow, rt->node + 1);
    }
    ReadStream(
        cluster_->sim(), mo.fs, mo.file, offset, seg, kShuffleChunk,
        [this, job, rt, seg, src = mo.node, fetch_flow, fetch_span] {
          job->counters.shuffle_network_bytes += seg;
          obs::FlowScope flow_scope(trace_, fetch_flow);
          cluster_->network()->Transfer(
              src, rt->node, seg,
              [this, job, rt, seg, fetch_flow, fetch_span] {
                if (trace_) {
                  trace_->FlowEnd(fetch_flow, rt->node + 1);
                  trace_->EndSpan(fetch_span);
                }
                --rt->inflight;
                rt->mem_bytes += seg;
                rt->fetched_bytes += seg;
                if (rt->mem_bytes >= job->spec.shuffle_buffer_bytes) {
                  ReduceSpill(job, rt, [this, job, rt] {
                    PumpShuffle(job, rt);
                    MaybeFinishShuffle(job, rt);
                  });
                } else {
                  PumpShuffle(job, rt);
                  MaybeFinishShuffle(job, rt);
                }
              });
        },
        trace_, fetch_flow);
  }
}

void MrEngine::ReduceSpill(std::shared_ptr<Job> job,
                           std::shared_ptr<ReduceTask> rt,
                           std::function<void()> then) {
  const uint64_t bytes = rt->mem_bytes;
  rt->mem_bytes = 0;
  if (bytes == 0) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, std::move(then));
    return;
  }
  rt->spilling = true;
  os::FileSystem* fs = cluster_->node(rt->node)->NextMrFs();
  auto file = fs->Create("shuffle_run_" + std::to_string(file_seq_++));
  BDIO_CHECK(file.ok()) << file.status().ToString();
  file.value()->set_io_tag(static_cast<uint32_t>(IoTag::kShuffleRun));
  file.value()->set_owner_job(job->job_id + 1);
  job->counters.intermediate_write_bytes += bytes;
  if (m_reduce_spills_) m_reduce_spills_->Inc();
  if (job->m_spills) job->m_spills->Inc();
  uint64_t span = 0;
  if (trace_) {
    span = trace_->BeginSpan(rt->node + 1, "mr", "reduce-spill",
                             "{\"bytes\":" + std::to_string(bytes) + "}");
  }
  AppendStream(
      cluster_->sim(), fs, file.value(), bytes, kTaskChunk,
      [this, rt, fs, f = file.value(), bytes, span,
       then = std::move(then)] {
        if (trace_) trace_->EndSpan(span);
        rt->runs.push_back(RunFile{fs, f, bytes});
        rt->spilling = false;
        then();
      },
      trace_, rt->flow);
}

void MrEngine::MaybeFinishShuffle(std::shared_ptr<Job> job,
                                  std::shared_ptr<ReduceTask> rt) {
  if (rt->dead || rt->merging || rt->spilling) return;
  if (job->maps_done < job->splits.size()) return;
  if (rt->next_output < job->map_outputs.size()) return;
  if (rt->inflight > 0) return;
  rt->merging = true;
  ReduceMergeAndRun(job, rt);
}

void MrEngine::ReduceMergeAndRun(std::shared_ptr<Job> job,
                                 std::shared_ptr<ReduceTask> rt) {
  // Interleaved reads across the on-disk runs feed the reducer; in-memory
  // segments need no I/O. CPU is charged per byte as data streams through.
  double cpu_per_byte = job->spec.reduce_cpu_ns_per_byte;
  if (job->spec.compress_intermediate) {
    cpu_per_byte += 0.5 * job->spec.compress_cpu_ns_per_byte;
  }

  struct MergeState {
    std::vector<RunFile> inputs;
    std::vector<uint64_t> pos;
    size_t cursor = 0;
    uint64_t mem_left = 0;
    uint64_t pending_n = 0;  ///< Bytes of the chunk currently in hand.
    bool drained = false;    ///< All run data has been read.
  };
  auto ms = std::make_shared<MergeState>();
  ms->inputs = rt->runs;
  ms->pos.assign(rt->runs.size(), 0);
  ms->mem_left = rt->mem_bytes;
  if (m_merge_width_ && !rt->runs.empty()) {
    m_merge_width_->Observe(static_cast<double>(rt->runs.size()));
  }
  if (trace_) {
    rt->merge_span = trace_->BeginSpan(
        rt->node + 1, "mr", "reduce-merge",
        "{\"runs\":" + std::to_string(rt->runs.size()) + ",\"mem\":" +
            std::to_string(rt->mem_bytes) + "}");
  }

  auto step = std::make_shared<std::function<void()>>();
  auto finish = [this, job, rt, step] {
    *step = nullptr;
    if (trace_) {
      trace_->EndSpan(rt->merge_span);
      rt->merge_span = 0;
    }
    // Write the reduce output slice to HDFS.
    const uint64_t job_input = [&] {
      uint64_t total = 0;
      for (const Split& s : job->splits) total += s.bytes;
      return total;
    }();
    const uint64_t out = static_cast<uint64_t>(
        static_cast<double>(job_input) * job->spec.output_ratio /
        static_cast<double>(job->num_reducers));
    if (out == 0) {
      OnReduceDone(job, rt);
      return;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "/part-r-%05u", rt->idx);
    const std::string path = job->spec.output_path + name;
    obs::FlowScope flow_scope(trace_, rt->flow);
    hdfs_->WriteReplicated(path, out, rt->node,
                           job->spec.output_replication,
                           [this, job, rt, out, path](Status s) {
                             BDIO_CHECK_OK(s);
                             if (rt->dead) {
                               // Host failed during the write: withdraw it.
                               BDIO_CHECK_OK(hdfs_->Delete(path));
                               return;
                             }
                             job->counters.hdfs_write_bytes += out;
                             if (job->m_hdfs_write) {
                               job->m_hdfs_write->Add(out);
                             }
                             OnReduceDone(job, rt);
                           });
  };
  // Picks the next on-disk chunk (round-robin over the runs) and starts its
  // read; returns false when all runs are drained.
  auto read_next = [this, job, ms,
                    flow = rt->flow](InlineFn on_ready) -> bool {
    size_t picked = SIZE_MAX;
    for (size_t k = 0; k < ms->inputs.size(); ++k) {
      const size_t i = (ms->cursor + k) % ms->inputs.size();
      if (ms->pos[i] < ms->inputs[i].bytes) {
        picked = i;
        break;
      }
    }
    if (picked == SIZE_MAX) return false;
    ms->cursor = picked + 1;
    const RunFile& in = ms->inputs[picked];
    const uint64_t n = std::min(kTaskChunk, in.bytes - ms->pos[picked]);
    ms->pos[picked] += n;
    ms->pending_n = n;
    job->counters.intermediate_read_bytes += n;
    obs::FlowScope flow_scope(trace_, flow);
    in.fs->Read(in.file, ms->pos[picked] - n, n, std::move(on_ready));
    return true;
  };

  // Steady state: CPU for the chunk in hand overlaps the next chunk's read.
  *step = [this, job, rt, ms, cpu_per_byte, read_next, step, finish] {
    // Memory-resident bytes cost only CPU; burn them first.
    if (ms->mem_left > 0) {
      const uint64_t n = std::min(kTaskChunk, ms->mem_left);
      ms->mem_left -= n;
      cluster_->node(rt->node)->cpu()->Run(
          static_cast<SimDuration>(static_cast<double>(n) * cpu_per_byte),
          [step] {
            if (*step) (*step)();
          });
      return;
    }
    const uint64_t current_n = ms->pending_n;
    if (current_n == 0) {
      // Pipeline prologue: fetch the first disk chunk (or finish).
      if (!read_next([step] {
            if (*step) (*step)();
          })) {
        cluster_->sim()->ScheduleAfter(SimDuration{}, finish);
      }
      return;
    }
    // Current chunk's data is in hand.
    auto cont = sim::Latch::Create(2, [step] {
      if (*step) (*step)();
    });
    ms->pending_n = 0;
    if (!read_next(cont->Arm())) {
      // Nothing left to read: finish once the last CPU slice completes.
      ms->drained = true;
      cont->Arrive();
    }
    cluster_->node(rt->node)->cpu()->Run(
        static_cast<SimDuration>(static_cast<double>(current_n) *
                                 cpu_per_byte),
        cont->Arm());
  };
  // Route the step chain through a drain check so the last CPU slice's
  // completion finishes the task.
  auto inner = *step;
  *step = [rt, step, inner, ms, finish] {
    if (rt->dead) {
      // Host failed: abandon the merge (copy-to-local before clearing the
      // closure we are executing).
      auto keep = step;
      *keep = nullptr;
      return;
    }
    if (ms->drained && ms->pending_n == 0 && ms->mem_left == 0) {
      // finish() clears *step, destroying this very closure — call a stack
      // copy so its captures outlive the destruction.
      auto finish_local = finish;
      finish_local();
      return;
    }
    inner();
  };
  (*step)();
}

void MrEngine::OnReduceDone(std::shared_ptr<Job> job,
                            std::shared_ptr<ReduceTask> rt) {
  if (rt->dead) return;  // a replacement owns this partition now
  rt->done = true;
  if (trace_) {
    trace_->EndSpan(rt->span);
    trace_->FlowEnd(rt->flow, rt->node + 1);
  }
  BDIO_CHECK(running_reduces_ > 0);
  --running_reduces_;
  // Drop this reducer's shuffle runs.
  for (const RunFile& r : rt->runs) {
    BDIO_CHECK_OK(r.fs->Delete(r.file->name()));
  }
  rt->runs.clear();
  ++free_reduce_slots_[rt->node];
  ++job->reduces_done;
  BDIO_CHECK(job->running_reduces > 0);
  --job->running_reduces;
  DispatchReduces();  // queued reducers (any job's) may now get the slot
  MaybeFinishJob(job);
}

void MrEngine::MaybeFinishJob(std::shared_ptr<Job> job) {
  if (job->finished) return;
  if (job->maps_done < job->splits.size()) return;
  // A failing job must drain its cancelled attempts before reporting (the
  // healthy path keeps its original timing: a cancelled speculative
  // straggler never outlives the reduce phase).
  if (job->failing && job->running_maps > 0) return;
  if (job->map_only()) {
    // All maps done; their HDFS writes complete inside OnMapDone's chain,
    // so maps_done implies outputs written.
  } else {
    if (!job->reducers_created) {
      // Degenerate: no reducers ever started (zero splits handled earlier).
      MaybeStartReducers(job);
      DispatchReduces();
    }
    if (job->reduces_done < job->num_reducers) return;
  }
  job->finished = true;
  if (trace_) trace_->EndSpan(job->span);
  // Job cleanup: delete map output files (the TaskTracker's job-end purge).
  for (const MapOutput& mo : job->map_outputs) {
    if (mo.file != nullptr) {
      BDIO_CHECK_OK(mo.fs->Delete(mo.file->name()));
    }
  }
  if (job->failing) {
    // A failed job's partial HDFS output is withdrawn (OutputCommitter
    // abort). Collect-then-delete: Delete mutates the namespace.
    std::vector<std::string> paths;
    for (const hdfs::FileEntry* f :
         hdfs_->name_node()->List(job->spec.output_path)) {
      paths.push_back(f->path);
    }
    for (const std::string& p : paths) BDIO_CHECK_OK(hdfs_->Delete(p));
  }
  const Status status = job->failing ? job->failure : Status::OK();
  job->counters.end_time = cluster_->sim()->Now();
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  cluster_->sim()->ScheduleAfter(SimDuration{}, [this, job, status] {
    job->done(status, job->counters);
    FireCompletionHooks(job->job_id, status, job->counters);
  });
}

void MrEngine::AddJobCompletionHook(JobCompletionHook hook) {
  BDIO_CHECK(hook != nullptr);
  completion_hooks_.push_back(std::move(hook));
}

void MrEngine::FireCompletionHooks(uint32_t job_id, const Status& status,
                                   const JobCounters& counters) {
  for (const JobCompletionHook& hook : completion_hooks_) {
    hook(job_id, status, counters);
  }
}

std::string MrEngine::AuditInvariants() const {
  uint32_t maps = 0;
  uint32_t reduces = 0;
  // Per-node occupied slots (current-epoch attempts only; attempts stranded
  // on a dead node hold no slot — the failure zeroed its pool).
  std::vector<uint32_t> map_busy(free_map_slots_.size(), 0);
  std::vector<uint32_t> reduce_busy(free_reduce_slots_.size(), 0);
  for (const auto& job : jobs_) {
    maps += job->running_maps;
    reduces += job->running_reduces;
    if (job->running_map_tasks.size() != job->running_maps) {
      return "mr: job " + std::to_string(job->job_id) + " running_maps=" +
             std::to_string(job->running_maps) + " but attempt list holds " +
             std::to_string(job->running_map_tasks.size());
    }
    uint32_t spec = 0;
    uint32_t marked = 0;
    uint32_t spec_marked = 0;
    for (const auto& mt : job->running_map_tasks) {
      if (mt->speculative) ++spec;
      if (mt->preempted) ++marked;
      if (mt->preempted && mt->speculative) ++spec_marked;
      if (mt->epoch == node_epoch_[mt->node]) ++map_busy[mt->node];
    }
    if (spec != job->speculative_running || marked != job->preempt_marked ||
        spec_marked != job->spec_preempt_marked) {
      return "mr: job " + std::to_string(job->job_id) +
             " speculative/preempt counters disagree with attempt flags";
    }
    uint32_t unstarted = 0;
    for (const bool started : job->started) {
      if (!started) ++unstarted;
    }
    if (unstarted != job->unstarted_maps) {
      return "mr: job " + std::to_string(job->job_id) + " unstarted_maps=" +
             std::to_string(job->unstarted_maps) + " but " +
             std::to_string(unstarted) + " splits are unstarted";
    }
    uint32_t parked = 0;
    for (size_t i = 0; i < job->parked.size(); ++i) {
      if (!job->parked[i]) continue;
      ++parked;
      if (!job->started[i] || job->committed[i]) {
        return "mr: job " + std::to_string(job->job_id) + " split " +
               std::to_string(i) + " is parked but started=" +
               std::to_string(job->started[i]) + " committed=" +
               std::to_string(job->committed[i]);
      }
    }
    if (parked != job->parked_splits) {
      return "mr: job " + std::to_string(job->job_id) + " parked_splits=" +
             std::to_string(job->parked_splits) + " but " +
             std::to_string(parked) + " splits carry the flag";
    }
    if (job->failing && job->parked_splits != 0) {
      return "mr: failing job " + std::to_string(job->job_id) +
             " still holds parked splits";
    }
    uint32_t running_red = 0;
    for (const auto& rt : job->reducers) {
      if (!rt->done && !rt->dead) {
        ++running_red;
        if (!node_dead_[rt->node]) ++reduce_busy[rt->node];
      }
    }
    if (running_red != job->running_reduces) {
      return "mr: job " + std::to_string(job->job_id) + " running_reduces=" +
             std::to_string(job->running_reduces) + " but " +
             std::to_string(running_red) + " reducers are live";
    }
  }
  if (maps != running_maps_) {
    return "mr: running_maps_=" + std::to_string(running_maps_) +
           " but per-job counts sum to " + std::to_string(maps);
  }
  if (reduces != running_reduces_) {
    return "mr: running_reduces_=" + std::to_string(running_reduces_) +
           " but per-job counts sum to " + std::to_string(reduces);
  }
  for (size_t n = 0; n < free_map_slots_.size(); ++n) {
    if (node_dead_[n]) continue;
    if (free_map_slots_[n] + map_busy[n] != slots_.map_slots) {
      return "mr: node " + std::to_string(n) + " map slots leak: free=" +
             std::to_string(free_map_slots_[n]) + " busy=" +
             std::to_string(map_busy[n]) + " configured=" +
             std::to_string(slots_.map_slots);
    }
    if (free_reduce_slots_[n] + reduce_busy[n] != slots_.reduce_slots) {
      return "mr: node " + std::to_string(n) + " reduce slots leak: free=" +
             std::to_string(free_reduce_slots_[n]) + " busy=" +
             std::to_string(reduce_busy[n]) + " configured=" +
             std::to_string(slots_.reduce_slots);
    }
    if (!node_blacklisted_[n] && ft_config_.blacklist_strikes > 0 &&
        node_strikes_[n] >= ft_config_.blacklist_strikes) {
      return "mr: node " + std::to_string(n) + " holds " +
             std::to_string(node_strikes_[n]) +
             " strikes but is not blacklisted (threshold " +
             std::to_string(ft_config_.blacklist_strikes) + ")";
    }
  }
  for (size_t n = 0; n < node_dead_.size(); ++n) {
    if (node_dead_[n] && node_blacklisted_[n]) {
      return "mr: node " + std::to_string(n) +
             " is both dead and blacklisted";
    }
  }
  return {};
}

}  // namespace bdio::mapreduce
