#ifndef BDIO_MAPREDUCE_ENGINE_H_
#define BDIO_MAPREDUCE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/status.h"
#include "hdfs/hdfs.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"

namespace bdio::mapreduce {

/// Result callback of a simulated job.
using JobCallback = std::function<void(Status, const JobCounters&)>;

/// Engine-wide observer of every job completion (success or failure).
/// Fired after the job's own JobCallback, in the same scheduled event, so a
/// hook sees the world after any chained submission the callback performed.
using JobCompletionHook =
    std::function<void(uint32_t job_id, const Status&, const JobCounters&)>;

/// Engine-wide fault-tolerance policy (the JobTracker side of Hadoop's
/// mapred.max.tracker.failures / blacklist machinery). Per-job knobs —
/// attempt budgets, backoff, max_failures_percent — live on SimJobSpec.
struct FaultToleranceConfig {
  /// Task failures on a node before it is blacklisted (excluded from map,
  /// speculative, and reduce placement; running tasks are not killed).
  uint32_t blacklist_strikes = 3;
  /// A blacklisted node rejoins the placement pool after this window and
  /// its strike count resets (Hadoop's day-scale decay, compressed).
  SimDuration blacklist_decay = Seconds(60);
};

/// The Hadoop-1 execution engine simulator: a JobTracker with per-node
/// map/reduce slots, locality-aware split scheduling, map-side sort/spill/
/// merge on the intermediate-data disks, slow-start shuffle with bounded
/// parallel copies, reduce-side merge runs, and HDFS output writes.
///
/// All volumes are modelled (no real keys move); the *I/O structure* — which
/// files, which disks, which sizes, which order — follows Hadoop 1.0.4.
///
/// The engine is multi-tenant: any number of jobs may be in flight at once,
/// contending for the shared TaskTracker slot pool (and, below it, the same
/// page caches, elevator queues, disks, and links). Every freed slot is
/// offered to the attached sched::Scheduler policy, which picks the job to
/// serve; the default policy is FIFO (Hadoop's JobQueueTaskScheduler), under
/// which a single job schedules exactly as the pre-multi-tenant engine did.
class MrEngine {
 public:
  MrEngine(cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
           const SlotConfig& slots, Rng rng);
  ~MrEngine();

  MrEngine(const MrEngine&) = delete;
  MrEngine& operator=(const MrEngine&) = delete;

  /// Replaces the slot-scheduling policy (not owned; must outlive the
  /// engine). Call before submitting jobs.
  void SetScheduler(sched::Scheduler* scheduler);
  sched::Scheduler* scheduler() const { return sched_; }

  /// Submits a job; `done` fires when it completes. Jobs submitted while
  /// others run contend for slots under the attached policy. `pool` and
  /// `weight` feed fair-share policies. Returns the engine-assigned job id
  /// (monotone in submission order).
  uint32_t SubmitJob(const SimJobSpec& spec, JobCallback done,
                     const std::string& pool = "default",
                     double weight = 1.0);

  /// Single-job compatibility name; jobs may be chained from the callback
  /// (iterative workloads).
  void RunJob(const SimJobSpec& spec, JobCallback done) {
    SubmitJob(spec, std::move(done));
  }

  /// Registers an engine-wide completion observer: `hook` fires once per
  /// submitted job, after that job's own callback, with the engine-assigned
  /// job id — including the early failure paths (missing/empty input).
  /// Hooks run in registration order and must not be unregistered; drivers
  /// layered on the engine (src/dag) and tests use them for cross-job
  /// bookkeeping without wrapping every JobCallback.
  void AddJobCompletionHook(JobCompletionHook hook);

  /// Simulates a TaskTracker failure at the current instant (Hadoop-1 fault
  /// handling): the node receives no further tasks, its in-flight tasks'
  /// results are discarded on completion and rescheduled elsewhere, its
  /// completed map outputs become unavailable and their maps re-execute,
  /// and its running reducers restart on other nodes. Approximations: I/O
  /// already queued on the dead node still drains (wasted work), and
  /// reducers that already copied segments of a lost output re-fetch the
  /// re-executed one. Affects every job in flight.
  void InjectNodeFailure(uint32_t node);
  bool node_failed(uint32_t node) const { return node_dead_[node]; }

  /// Crashes every running map attempt on `node` at the current instant
  /// (the crash-task fault verb): each attempt aborts at its next chunk
  /// boundary as a FAILED attempt — it charges the task's attempt budget,
  /// strikes the node toward blacklisting, and re-queues the split after a
  /// deterministic exponential backoff. The node itself stays alive.
  void InjectTaskCrash(uint32_t node);

  /// Replaces the blacklist policy. Call before submitting jobs.
  void SetFaultTolerance(const FaultToleranceConfig& config) {
    ft_config_ = config;
  }
  const FaultToleranceConfig& fault_tolerance() const { return ft_config_; }
  bool node_blacklisted(uint32_t node) const {
    return node_blacklisted_[node];
  }

  // Engine-wide fault-tolerance totals (per-job figures live in
  // JobCounters); mirrored into mr.retry.* / mr.reexec.* when a registry
  // is attached.
  uint64_t task_failures() const { return task_failures_; }
  uint64_t retries_scheduled() const { return retries_scheduled_; }
  uint64_t maps_reexecuted() const { return maps_reexecuted_; }
  uint64_t reexec_read_bytes() const { return reexec_read_bytes_; }
  uint64_t reexec_write_bytes() const { return reexec_write_bytes_; }
  uint64_t wasted_work_bytes() const { return wasted_work_bytes_; }
  uint64_t nodes_blacklisted() const { return nodes_blacklisted_; }
  uint64_t splits_abandoned() const { return splits_abandoned_; }

  // Engine-wide speculative-execution totals (per-job figures live in
  // JobCounters). Plain fields so benches and tests read them without a
  // metrics registry; mirrored into mr.speculative.* when one is attached.
  uint64_t speculative_launched() const { return speculative_launched_; }
  uint64_t speculative_killed() const { return speculative_killed_; }
  /// Backup attempts currently running across all jobs.
  uint32_t speculative_running() const;
  uint64_t speculative_wasted_bytes() const {
    return speculative_wasted_bytes_;
  }

  /// Cluster-wide tasks currently executing (for timeline sampling).
  uint32_t running_maps() const { return running_maps_; }
  uint32_t running_reduces() const { return running_reduces_; }

  /// Unoccupied map slots across live nodes (test/bench introspection).
  uint32_t free_map_slot_count() const;

  /// Map attempts stranded on failed nodes whose queued I/O has not yet
  /// drained (their completions will be discarded). Test/bench
  /// introspection.
  uint32_t stale_map_attempts() const;

  /// Jobs submitted but not yet finished.
  uint32_t active_jobs() const { return static_cast<uint32_t>(jobs_.size()); }

  const SlotConfig& slots() const { return slots_; }

  /// Cross-checks the JobTracker's bookkeeping (bdio::invariants): global
  /// running-task counters vs per-job recounts, per-job counters vs the
  /// live attempt lists, per-node slot conservation (free + occupied ==
  /// configured) on live nodes, and split-queue accounting. Returns ""
  /// when every invariant holds.
  std::string AuditInvariants() const;

  /// Attaches observability sinks (either may be null): tasks and MR phases
  /// (spill, merge pass, shuffle fetch) become spans, each task/fetch opens
  /// a trace flow carried down into the filesystem and network layers, and
  /// the registry gains spill counts, merge-pass widths, and shuffle bytes.
  /// Per-job attribution: every job gets "mr.job.*" counters labelled
  /// {job="<name>#<id>"} and its spans carry a "job" arg, so one trace
  /// holds one async-span tree per job.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

 private:
  struct Split {
    std::string path;  ///< HDFS file this split belongs to.
    uint64_t offset = 0;
    uint64_t bytes = 0;
    std::vector<uint32_t> hosts;
  };
  struct MapOutput {
    uint32_t node = 0;
    os::FileSystem* fs = nullptr;
    os::File* file = nullptr;
    uint64_t bytes = 0;
    size_t split_idx = 0;  ///< Split this output came from (re-execution).
  };
  struct RunFile {
    os::FileSystem* fs = nullptr;
    os::File* file = nullptr;
    uint64_t bytes = 0;
  };
  struct ReduceTask;
  struct MapTask;
  struct Job;

  /// Offers free map slots (node-major, repeated passes) to the policy
  /// until no slot or no runnable map remains; leftover slots are then
  /// offered to stragglers as speculative backups.
  void DispatchMaps();
  /// Launches backup attempts for straggling maps of speculative jobs on
  /// the remaining free slots (Hadoop's speculative execution).
  void DispatchSpeculative();
  /// Offers free reduce slots to the policy, one queued reducer at a time.
  void DispatchReduces();
  /// Snapshot of every active job for the policy.
  std::vector<sched::JobSchedState> SchedStates() const;
  /// Fair-share preemption at admission: while `job` is starved of map
  /// slots, asks the policy for victims and reclaims their most recent
  /// map tasks (they abandon at the next chunk boundary).
  void MaybePreemptFor(const std::shared_ptr<Job>& job);

  void StartMapTask(std::shared_ptr<Job> job, uint32_t node,
                    size_t split_idx, bool speculative = false);
  /// Marks the split committed and cancels any rival attempt (it abandons
  /// at its next chunk boundary and its spills are deleted).
  void CommitMapAttempt(const std::shared_ptr<Job>& job,
                        const std::shared_ptr<MapTask>& mt);
  /// Retires an attempt that lost the commit race (cancelled mid-task or
  /// beaten at the finish line): purges its spills, frees its slot, and
  /// charges the duplicate I/O to the speculative-waste counters.
  void DiscardMapAttempt(std::shared_ptr<Job> job,
                         std::shared_ptr<MapTask> mt);
  /// True when some live attempt of `split_idx` is still running.
  bool HasLiveAttempt(const std::shared_ptr<Job>& job, size_t split_idx,
                      const std::shared_ptr<MapTask>& except) const;
  void MapReadLoop(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt);
  void MapProcessChunk(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt,
                       uint64_t chunk_bytes);
  void MapSpill(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt,
                std::function<void()> then);
  void MapFinish(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt);
  void OnMapDone(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt);
  /// A preempted attempt abandons: spills are purged, the split re-queues,
  /// and the slot returns to the pool.
  void OnMapPreempted(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt);
  /// A crashed attempt abandons as a FAILED attempt: its I/O is charged to
  /// wasted-work, the node is struck, and the split either re-queues after
  /// backoff, is abandoned under max_failures_percent, or fails the job.
  void OnMapFailed(std::shared_ptr<Job> job, std::shared_ptr<MapTask> mt);
  /// Parks `split_idx` for a capped exponential backoff, then re-queues it.
  void ParkSplit(std::shared_ptr<Job> job, size_t split_idx);
  /// Gives up on `split_idx` (budget exhausted, within the job's
  /// max_failures_percent allowance): the split counts as done with no
  /// output, so the job commits with partial input.
  void AbandonSplit(const std::shared_ptr<Job>& job, size_t split_idx);
  /// Budget exhausted beyond the allowance: the job transitions to failing
  /// — every other unfinished split is written off, running attempts are
  /// cancelled, and MaybeFinishJob reports ResourceExhausted once the
  /// drain completes.
  void FailJob(const std::shared_ptr<Job>& job, size_t split_idx);
  /// Charges a task failure against `node`; blacklists it at the strike
  /// threshold and arms the decay timer.
  void StrikeNode(uint32_t node);

  void MaybeStartReducers(std::shared_ptr<Job> job);
  void PumpShuffle(std::shared_ptr<Job> job, std::shared_ptr<ReduceTask> rt);
  void ReduceSpill(std::shared_ptr<Job> job, std::shared_ptr<ReduceTask> rt,
                   std::function<void()> then);
  void MaybeFinishShuffle(std::shared_ptr<Job> job,
                          std::shared_ptr<ReduceTask> rt);
  void ReduceMergeAndRun(std::shared_ptr<Job> job,
                         std::shared_ptr<ReduceTask> rt);
  void OnReduceDone(std::shared_ptr<Job> job,
                    std::shared_ptr<ReduceTask> rt);
  void MaybeFinishJob(std::shared_ptr<Job> job);
  /// Runs every registered completion hook for a finished job.
  void FireCompletionHooks(uint32_t job_id, const Status& status,
                           const JobCounters& counters);

  cluster::Cluster* cluster_;
  hdfs::Hdfs* hdfs_;
  SlotConfig slots_;
  Rng rng_;
  std::vector<uint32_t> free_map_slots_;
  std::vector<uint32_t> free_reduce_slots_;
  std::vector<bool> node_dead_;
  std::vector<uint64_t> node_epoch_;  ///< Bumped per failure.
  FaultToleranceConfig ft_config_;
  std::vector<uint32_t> node_strikes_;    ///< Failures since last decay.
  std::vector<bool> node_blacklisted_;
  std::vector<std::shared_ptr<Job>> jobs_;  ///< Active, admission order.
  uint32_t next_job_id_ = 0;
  uint32_t running_maps_ = 0;
  uint32_t running_reduces_ = 0;
  uint64_t file_seq_ = 0;  ///< Unique local-file naming across jobs.
  uint64_t speculative_launched_ = 0;
  uint64_t speculative_killed_ = 0;
  uint64_t speculative_wasted_bytes_ = 0;
  uint64_t task_failures_ = 0;
  uint64_t retries_scheduled_ = 0;
  uint64_t maps_reexecuted_ = 0;
  uint64_t reexec_read_bytes_ = 0;
  uint64_t reexec_write_bytes_ = 0;
  uint64_t wasted_work_bytes_ = 0;
  uint64_t nodes_blacklisted_ = 0;
  uint64_t splits_abandoned_ = 0;
  /// Backoff jitter stream, forked from the engine seed at construction so
  /// draws happen in deterministic sim-event order (never the wall clock).
  Rng retry_rng_;

  std::unique_ptr<sched::Scheduler> default_sched_;  ///< FIFO.
  sched::Scheduler* sched_;  ///< Never null; defaults to default_sched_.
  std::vector<JobCompletionHook> completion_hooks_;

  // Observability sinks; null (the default) keeps task paths at one pointer
  // test per site.
  obs::TraceSession* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_map_spills_ = nullptr;
  obs::Counter* m_reduce_spills_ = nullptr;
  obs::Counter* m_shuffle_bytes_ = nullptr;
  obs::Counter* m_preempted_maps_ = nullptr;
  obs::Counter* m_spec_launched_ = nullptr;
  obs::Counter* m_spec_killed_ = nullptr;
  obs::Counter* m_spec_wasted_ = nullptr;
  obs::Counter* m_retry_failures_ = nullptr;
  obs::Counter* m_retry_scheduled_ = nullptr;
  obs::Counter* m_retry_blacklisted_ = nullptr;
  obs::Counter* m_retry_abandoned_ = nullptr;
  obs::Counter* m_retry_wasted_ = nullptr;
  obs::Counter* m_reexec_maps_ = nullptr;
  obs::Counter* m_reexec_read_ = nullptr;
  obs::Counter* m_reexec_write_ = nullptr;
  obs::Histogram* m_merge_width_ = nullptr;
};

/// Streams `total` bytes into `file` in `chunk`-sized appends; `cb` fires
/// when the last append is accepted. When `trace`/`flow` are given, every
/// step runs under that trace flow so downstream layers stay linked.
void AppendStream(sim::Simulator* sim, os::FileSystem* fs, os::File* file,
                  uint64_t total, uint64_t chunk, std::function<void()> cb,
                  obs::TraceSession* trace = nullptr, uint64_t flow = 0);

/// Streams a read of [offset, offset+total) in `chunk`-sized requests.
void ReadStream(sim::Simulator* sim, os::FileSystem* fs, os::File* file,
                uint64_t offset, uint64_t total, uint64_t chunk,
                std::function<void()> cb, obs::TraceSession* trace = nullptr,
                uint64_t flow = 0);

}  // namespace bdio::mapreduce

#endif  // BDIO_MAPREDUCE_ENGINE_H_
