#ifndef BDIO_MAPREDUCE_JOB_H_
#define BDIO_MAPREDUCE_JOB_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace bdio::mapreduce {

/// Per-node task slot configuration — the paper's first experimental factor.
/// The paper's labels ("1_8", "2_16") are kept: the second configuration
/// doubles both slot kinds.
struct SlotConfig {
  uint32_t map_slots = 8;
  uint32_t reduce_slots = 8;
  std::string label = "1_8";

  uint32_t total() const { return map_slots + reduce_slots; }

  static SlotConfig Paper_1_8() { return SlotConfig{8, 8, "1_8"}; }
  static SlotConfig Paper_2_16() { return SlotConfig{16, 16, "2_16"}; }
};

/// One simulated MapReduce job: volume ratios and CPU costs calibrated from
/// the functional engine (mrfunc) running the real workload code on
/// generated data.
struct SimJobSpec {
  std::string name;
  std::string input_path;   ///< Pre-existing HDFS file.
  std::string output_path;  ///< HDFS file the job creates.

  /// Intermediate (serialized map output) bytes per input byte, before
  /// combining and compression. This is the rate at which the map-side sort
  /// buffer fills.
  double map_output_ratio = 1.0;
  /// Fraction of buffered intermediate data that survives the spill-time
  /// combiner (1.0 = no combiner; algebraic aggregates shrink to ~0).
  double combine_ratio = 1.0;
  /// Job output bytes per input byte.
  double output_ratio = 1.0;

  /// CPU cost of map/reduce logic per byte processed.
  double map_cpu_ns_per_byte = 2.0;
  double reduce_cpu_ns_per_byte = 2.0;

  /// mapred.compress.map.output and the codec behaviour measured on real
  /// generated data.
  bool compress_intermediate = false;
  double compress_ratio = 0.45;          ///< compressed/original size.
  double compress_cpu_ns_per_byte = 1.5; ///< Extra CPU per intermediate byte.

  /// Sentinel for num_reduce_tasks: one reducer per configured reduce slot
  /// (a single wave), the common Hadoop sizing rule.
  static constexpr uint32_t kOneWave = 0xFFFFFFFFu;

  uint32_t num_reduce_tasks = kOneWave;  ///< 0 = map-only job.
  uint32_t output_replication = 3;

  uint64_t split_bytes = MiB(64);        ///< One map task per split.
  uint64_t sort_buffer_bytes = MiB(100); ///< io.sort.mb.
  uint64_t shuffle_buffer_bytes = MiB(140);  ///< Reduce in-memory merge space.
  uint32_t parallel_copies = 5;          ///< Concurrent shuffle fetches.
  double reduce_slowstart = 0.05;        ///< Maps done before reducers start.
  SimDuration task_start_latency = Millis(200);  ///< JVM/task setup.

  /// mapred.map.tasks.speculative.execution: when spare map slots exist and
  /// no regular map is runnable, launch a backup attempt (on a different
  /// node) for any map that has been running longer than
  /// `speculative_slowdown` times the mean duration of this job's committed
  /// maps. The first attempt to finish commits; the loser is killed and its
  /// spills deleted — the duplicate I/O shows up in
  /// JobCounters::speculative_wasted_bytes and mr.speculative.* metrics.
  /// Off by default: the healthy engine is bit-exact with the
  /// pre-speculation model.
  bool speculative_execution = false;
  double speculative_slowdown = 1.5;

  /// mapred.map.max.attempts: total attempts a map task may consume before
  /// the job gives up on it. Crashed attempts (crash-task fault) count;
  /// attempts lost to a TaskTracker death are KILLED, not FAILED, and do
  /// not charge the budget — exactly Hadoop 1.x semantics.
  uint32_t max_task_attempts = 4;
  /// Failed tasks re-queue after a capped exponential backoff:
  /// min(cap, base << (failures-1)) plus a small deterministic jitter drawn
  /// from the engine's forked Rng (never the wall clock).
  SimDuration retry_backoff_base = Millis(500);
  SimDuration retry_backoff_cap = Seconds(10);
  /// mapred.max.map.failures.percent: the fraction (0..100) of map tasks a
  /// job may abandon after exhausting their attempt budgets and still
  /// commit with partial input. 0 (the default) fails the job on the first
  /// exhausted task.
  double max_failures_percent = 0.0;
};

/// Aggregate volume counters of a finished job.
struct JobCounters {
  uint64_t hdfs_read_bytes = 0;
  uint64_t hdfs_write_bytes = 0;  ///< Logical (before replication).
  uint64_t intermediate_write_bytes = 0;
  uint64_t intermediate_read_bytes = 0;
  uint64_t shuffle_network_bytes = 0;
  uint32_t maps_launched = 0;
  uint32_t maps_local = 0;
  uint32_t reduces_launched = 0;
  /// Map attempts reclaimed by fair-share preemption (their splits re-ran).
  uint32_t maps_preempted = 0;
  /// Backup attempts launched for stragglers, and attempts (backup or
  /// original) killed after losing the race to commit.
  uint32_t speculative_launched = 0;
  uint32_t speculative_killed = 0;
  /// I/O the losing attempts performed for nothing: duplicate input reads
  /// plus the spill bytes deleted at kill time.
  uint64_t speculative_wasted_bytes = 0;
  /// Attempts that crashed (crash-task fault) and charged the budget.
  uint32_t task_failures = 0;
  /// Backoff re-schedules armed for failed tasks.
  uint32_t retries_scheduled = 0;
  /// Completed maps whose local output died with its node and re-executed.
  uint32_t maps_reexecuted = 0;
  /// HDFS re-reads and spill re-writes performed by re-execution attempts.
  uint64_t reexec_read_bytes = 0;
  uint64_t reexec_write_bytes = 0;
  /// Splits abandoned under max_failures_percent (partial-input commit).
  uint32_t splits_abandoned = 0;
  /// I/O discarded by the failure paths: crashed attempts' reads + purged
  /// spills, lost map outputs, dead reducers' fetched segments, and the
  /// aborted attempts of a failing job. Disjoint from
  /// speculative_wasted_bytes.
  uint64_t wasted_work_bytes = 0;
  uint64_t spills = 0;
  SimTime start_time;
  SimTime end_time;

  double DurationSeconds() const { return ToSeconds(end_time - start_time); }
};

}  // namespace bdio::mapreduce

#endif  // BDIO_MAPREDUCE_JOB_H_
