namespace bdio::compress {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "compress"; }
}  // namespace bdio::compress
