#ifndef BDIO_COMPRESS_CODEC_H_
#define BDIO_COMPRESS_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace bdio::compress {

/// Byte-stream compression codec interface. Implementations must be
/// deterministic and round-trip exact.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string name() const = 0;

  /// Compresses `input`, replacing `*output`.
  virtual Status Compress(std::string_view input,
                          std::string* output) const = 0;

  /// Decompresses `input` (previously produced by Compress), replacing
  /// `*output`. Returns Corruption on malformed input.
  virtual Status Decompress(std::string_view input,
                            std::string* output) const = 0;
};

/// Identity codec (compression disabled).
class NullCodec : public Codec {
 public:
  std::string name() const override { return "null"; }
  Status Compress(std::string_view input, std::string* output) const override {
    output->assign(input);
    return Status::OK();
  }
  Status Decompress(std::string_view input,
                    std::string* output) const override {
    output->assign(input);
    return Status::OK();
  }
};

/// LZ77 byte codec in the LZ4 block format family: greedy hash-chain
/// matching over a 64 KiB window; sequences of (literal run, match) tokens
/// with nibble-packed lengths and 16-bit offsets. This is the codec Hadoop's
/// intermediate-data compression is modelled with; its measured ratio on the
/// generated datasets calibrates the simulator.
class FastLzCodec : public Codec {
 public:
  std::string name() const override { return "fastlz"; }
  Status Compress(std::string_view input, std::string* output) const override;
  Status Decompress(std::string_view input,
                    std::string* output) const override;
};

/// Factory: "null" or "fastlz".
std::unique_ptr<Codec> MakeCodec(const std::string& name);

/// Compressed-size / original-size for `sample` under `codec` (1.0 for empty
/// input). Used to calibrate simulated data volumes.
double CompressedFraction(const Codec& codec, std::string_view sample);

}  // namespace bdio::compress

#endif  // BDIO_COMPRESS_CODEC_H_
