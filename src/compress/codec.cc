#include "compress/codec.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace bdio::compress {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;

uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash(uint32_t v) {
  return (v * 2654435761U) >> (32 - kHashBits);
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*p < end && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(**p);
    ++*p;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Emits an LZ4-style extended length: nibble already holds min(v, 15);
/// if v >= 15 the remainder follows as 255-saturated bytes.
void PutExtLength(std::string* out, size_t v) {
  if (v < 15) return;
  v -= 15;
  while (v >= 255) {
    out->push_back(static_cast<char>(0xFF));
    v -= 255;
  }
  out->push_back(static_cast<char>(v));
}

bool GetExtLength(const char** p, const char* end, size_t nibble,
                  size_t* v) {
  *v = nibble;
  if (nibble != 15) return true;
  while (*p < end) {
    const uint8_t byte = static_cast<uint8_t>(**p);
    ++*p;
    *v += byte;
    if (byte != 255) return true;
  }
  return false;
}

}  // namespace

Status FastLzCodec::Compress(std::string_view input,
                             std::string* output) const {
  output->clear();
  PutVarint(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n == 0) return Status::OK();

  std::vector<uint32_t> table(kHashSize, 0xFFFFFFFFu);
  size_t i = 0;
  size_t anchor = 0;

  auto emit_sequence = [&](size_t lit_end, size_t match_len,
                           size_t match_offset) {
    const size_t lit_len = lit_end - anchor;
    const uint8_t lit_nibble = static_cast<uint8_t>(std::min<size_t>(
        lit_len, 15));
    uint8_t match_nibble = 0;
    if (match_len > 0) {
      BDIO_CHECK(match_len >= kMinMatch);
      match_nibble =
          static_cast<uint8_t>(std::min<size_t>(match_len - kMinMatch, 15));
    }
    output->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
    PutExtLength(output, lit_len);
    output->append(base + anchor, lit_len);
    if (match_len > 0) {
      output->push_back(static_cast<char>(match_offset & 0xFF));
      output->push_back(static_cast<char>((match_offset >> 8) & 0xFF));
      PutExtLength(output, match_len - kMinMatch);
    }
  };

  while (i + kMinMatch <= n) {
    const uint32_t v = Read32(base + i);
    const uint32_t h = Hash(v);
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (cand != 0xFFFFFFFFu && i - cand <= kMaxOffset &&
        Read32(base + cand) == v) {
      // Extend the match.
      size_t len = kMinMatch;
      while (i + len < n && base[cand + len] == base[i + len]) ++len;
      emit_sequence(i, len, i - cand);
      // Index a couple of positions inside the match to help later matches.
      const size_t step = len > 32 ? len / 8 : 1;
      for (size_t k = i + 1; k + kMinMatch <= i + len && k + kMinMatch <= n;
           k += step) {
        table[Hash(Read32(base + k))] = static_cast<uint32_t>(k);
      }
      i += len;
      anchor = i;
    } else {
      ++i;
    }
  }
  // Trailing literals (possibly the whole input).
  if (anchor < n || n == 0) {
    emit_sequence(n, 0, 0);
  } else if (anchor == n) {
    // Input ended exactly on a match: emit an empty final literal run so the
    // decoder's "last sequence has no match" rule still terminates cleanly.
    emit_sequence(n, 0, 0);
  }
  return Status::OK();
}

Status FastLzCodec::Decompress(std::string_view input,
                               std::string* output) const {
  output->clear();
  const char* p = input.data();
  const char* end = p + input.size();
  uint64_t expected = 0;
  if (!GetVarint(&p, end, &expected)) {
    return Status::Corruption("fastlz: bad size header");
  }
  output->reserve(expected);
  while (output->size() < expected || p < end) {
    if (p >= end) return Status::Corruption("fastlz: truncated stream");
    const uint8_t token = static_cast<uint8_t>(*p++);
    size_t lit_len = 0;
    if (!GetExtLength(&p, end, token >> 4, &lit_len)) {
      return Status::Corruption("fastlz: bad literal length");
    }
    if (p + lit_len > end) {
      return Status::Corruption("fastlz: literals beyond input");
    }
    output->append(p, lit_len);
    p += lit_len;
    if (output->size() >= expected) {
      // Final sequence carries no match.
      if (output->size() != expected) {
        return Status::Corruption("fastlz: output overrun");
      }
      if (p != end) return Status::Corruption("fastlz: trailing garbage");
      break;
    }
    if (p + 2 > end) return Status::Corruption("fastlz: truncated offset");
    const size_t offset = static_cast<uint8_t>(p[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(p[1]))
                           << 8);
    p += 2;
    size_t match_len = 0;
    if (!GetExtLength(&p, end, token & 0x0F, &match_len)) {
      return Status::Corruption("fastlz: bad match length");
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > output->size()) {
      return Status::Corruption("fastlz: bad match offset");
    }
    if (output->size() + match_len > expected) {
      return Status::Corruption("fastlz: match overruns output");
    }
    // Byte-by-byte copy: offsets smaller than the match length replicate
    // (RLE-style), matching the encoder's semantics.
    size_t src = output->size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      output->push_back((*output)[src + k]);
    }
    if (output->size() == expected) {
      // A valid stream always terminates with a (possibly empty) literal-only
      // sequence; reaching the expected size on a match means truncation.
      if (p == end) return Status::Corruption("fastlz: missing final run");
    }
  }
  if (output->size() != expected) {
    return Status::Corruption("fastlz: short output");
  }
  return Status::OK();
}

std::unique_ptr<Codec> MakeCodec(const std::string& name) {
  if (name == "null") return std::make_unique<NullCodec>();
  if (name == "fastlz") return std::make_unique<FastLzCodec>();
  BDIO_LOG(Fatal) << "unknown codec: " << name;
  return nullptr;
}

double CompressedFraction(const Codec& codec, std::string_view sample) {
  if (sample.empty()) return 1.0;
  std::string compressed;
  BDIO_CHECK_OK(codec.Compress(sample, &compressed));
  return static_cast<double>(compressed.size()) /
         static_cast<double>(sample.size());
}

}  // namespace bdio::compress
