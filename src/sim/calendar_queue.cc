#include "sim/calendar_queue.h"

#include <algorithm>
#include <bit>

namespace bdio::sim {

namespace {

/// Bucket-array bounds. The array doubles when occupancy exceeds two events
/// per bucket and halves below one per four, so steady state keeps bucket
/// heaps a handful of entries deep. The cap bounds rebucketing cost and
/// memory for pathological backlogs.
constexpr size_t kMinBuckets = 16;
constexpr size_t kMaxBuckets = 1 << 15;

/// Bucket-width bounds: 2^6 ns = 64 ns up to 2^40 ns ≈ 18 min. Outside this
/// band a simulated-I/O event population is either degenerate or so sparse
/// that the direct-search fallback is the right regime anyway.
constexpr uint32_t kMinShift = 6;
constexpr uint32_t kMaxShift = 40;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

void CalendarQueue::Push(EventNode* n) {
  const uint64_t epoch = EpochOf(n->time);
  Bucket& b = buckets_[BucketIndex(epoch)];
  b.push_back(n);
  std::push_heap(b.begin(), b.end(), HeapCmp{});
  ++size_;
  if (epoch < cur_epoch_) cur_epoch_ = epoch;  // Rewind the search start.
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    Resize(buckets_.size() * 2);
  }
}

EventNode* CalendarQueue::FindMin() {
  if (size_ == 0) return nullptr;
  // One full year from the search floor. Given the floor invariant
  // (cur_epoch_ <= min event epoch), the first bucket head dated within the
  // scan epoch is the global (time, seq) minimum: an epoch's events all
  // share one bucket, and heads of later epochs fail the date test.
  uint64_t epoch = cur_epoch_;
  for (size_t i = 0; i < buckets_.size(); ++i, ++epoch) {
    const Bucket& b = buckets_[BucketIndex(epoch)];
    if (!b.empty() && EpochOf(b.front()->time) <= epoch) {
      cur_epoch_ = epoch;
      return b.front();
    }
  }
  // Sparse regime: nothing within a year of the floor. Sweep all bucket
  // heads once (each head is its bucket's minimum).
  EventNode* best = nullptr;
  for (const Bucket& b : buckets_) {
    if (!b.empty() && (best == nullptr || Earlier(b.front(), best))) {
      best = b.front();
    }
  }
  cur_epoch_ = EpochOf(best->time);
  return best;
}

EventNode* CalendarQueue::PeekMin() { return FindMin(); }

EventNode* CalendarQueue::PopMin() {
  EventNode* n = FindMin();
  if (n == nullptr) return nullptr;
  Bucket& b = buckets_[BucketIndex(cur_epoch_)];
  std::pop_heap(b.begin(), b.end(), HeapCmp{});
  b.pop_back();
  --size_;
  if (size_ < buckets_.size() / 4 && buckets_.size() > kMinBuckets) {
    Resize(buckets_.size() / 2);
  }
  return n;
}

void CalendarQueue::Resize(size_t nbuckets) {
  std::vector<EventNode*> all;
  all.reserve(size_);
  SimTime lo = SimTime::Max();
  SimTime hi;
  for (Bucket& b : buckets_) {
    for (EventNode* n : b) {
      lo = std::min(lo, n->time);
      hi = std::max(hi, n->time);
      all.push_back(n);
    }
    b.clear();
  }
  // Track the mean event spacing so a bucket holds ~1–2 events: that is the
  // operating point where both push (short heap) and pop (short scan) are
  // O(1) amortized.
  if (all.size() > 1) {
    const uint64_t gap = (hi - lo).ns() / all.size();
    shift_ = std::clamp(static_cast<uint32_t>(std::bit_width(gap)),
                        kMinShift, kMaxShift);
  }
  buckets_.assign(nbuckets, {});
  cur_epoch_ = all.empty() ? 0 : ~uint64_t{0};
  for (EventNode* n : all) {
    const uint64_t epoch = EpochOf(n->time);
    Bucket& b = buckets_[BucketIndex(epoch)];
    b.push_back(n);
    std::push_heap(b.begin(), b.end(), HeapCmp{});
    cur_epoch_ = std::min(cur_epoch_, epoch);
  }
}

}  // namespace bdio::sim
