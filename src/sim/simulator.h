#ifndef BDIO_SIM_SIMULATOR_H_
#define BDIO_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace bdio::sim {

/// Discrete-event simulation kernel. Events are (time, callback) pairs kept
/// in a priority queue; ties are broken by insertion order so runs are fully
/// deterministic. Single-threaded by design.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= Now()).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `d` has elapsed.
  void ScheduleAfter(SimDuration d, std::function<void()> fn) {
    ScheduleAt(now_ + d, std::move(fn));
  }

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool Step();

  /// Runs until no events remain.
  void Run();

  /// Runs until simulated time reaches `t` or the queue drains. The clock is
  /// advanced to `t` even if the queue drains earlier.
  void RunUntil(SimTime t);

  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  /// Installs a hook called after every event callback returns (debug
  /// checkers such as bdio::invariants). The hook must be read-only with
  /// respect to simulation state — it must not schedule events or mutate
  /// the model, or determinism guarantees are void. Pass nullptr to clear.
  void SetPostEventHook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::function<void()> post_event_hook_;
};

/// Registers `sim`'s clock as the calling thread's BDIO_LOG timestamp
/// source for the object's lifetime: log lines gain a "[t=<seconds>s]"
/// prefix that correlates with trace timestamps. Thread-local, so
/// concurrent experiments on pool threads don't interfere.
class ScopedLogClock {
 public:
  explicit ScopedLogClock(const Simulator* sim);
  ~ScopedLogClock();

  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_SIMULATOR_H_
