#ifndef BDIO_SIM_SIMULATOR_H_
#define BDIO_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/inline_fn.h"
#include "common/logging.h"
#include "common/units.h"
#include "sim/calendar_queue.h"
#include "sim/event_pool.h"

namespace bdio::sim {

/// Discrete-event simulation kernel. Events are (time, callback) pairs kept
/// in a calendar queue; ties are broken by insertion order (a per-simulator
/// sequence number) so runs are fully deterministic. Single-threaded by
/// design: one Simulator per experiment, experiments parallelized across
/// threads never share one.
///
/// Hot-path design (see docs/PERFORMANCE.md for the full map):
///  - callbacks are type-erased into InlineFn (80-byte inline capture), so
///    scheduling a closure does not allocate;
///  - event nodes come from an EventPool freelist (fixed-size aligned
///    blocks), so neither Push nor Pop touches the global allocator;
///  - the pending set is a CalendarQueue: O(1) amortized schedule/extract
///    versus the binary heap's O(log n) sift.
///
/// Pool lifetime rule: Step() moves the callback out of its EventNode and
/// frees the node *before* invoking it, so a callback may (and usually
/// does) schedule new events that reuse the node that carried it. Code
/// outside the kernel never sees EventNodes.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= Now()). `fn` is any void()
  /// callable; captures up to InlineFn::kInlineSize bytes stay inline.
  template <typename F>
  void ScheduleAt(SimTime t, F&& fn) {
    BDIO_CHECK(t >= now_) << "cannot schedule in the past: t=" << t
                          << " now=" << now_;
    EventNode* n = pool_.Alloc();
    n->time = t;
    n->seq = next_seq_++;
    n->fn = InlineFn(std::forward<F>(fn));
    queue_.Push(n);
  }

  /// Schedules `fn` after `d` has elapsed.
  template <typename F>
  void ScheduleAfter(SimDuration d, F&& fn) {
    ScheduleAt(now_ + d, std::forward<F>(fn));
  }

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool Step();

  /// Runs until no events remain.
  void Run();

  /// Runs until simulated time reaches `t` or the queue drains. The clock is
  /// advanced to `t` even if the queue drains earlier; a `t` at or before
  /// Now() runs nothing and leaves the clock unchanged.
  void RunUntil(SimTime t);

  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  /// Installs a hook called after every event callback returns (debug
  /// checkers such as bdio::invariants — see src/check/invariants.h). The
  /// hook must be read-only with respect to simulation state: it must not
  /// schedule events or mutate the model, or determinism guarantees are
  /// void. It may alert (log/abort) on violated invariants. Pass nullptr
  /// to clear. Hook dispatch is one branch when unset, so release runs
  /// pay nothing.
  void SetPostEventHook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  EventPool pool_;
  CalendarQueue queue_;
  std::function<void()> post_event_hook_;
};

/// Registers `sim`'s clock as the calling thread's BDIO_LOG timestamp
/// source for the object's lifetime: log lines gain a "[t=<seconds>s]"
/// prefix that correlates with trace timestamps. Thread-local, so
/// concurrent experiments on pool threads don't interfere.
class ScopedLogClock {
 public:
  explicit ScopedLogClock(const Simulator* sim);
  ~ScopedLogClock();

  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_SIMULATOR_H_
