#ifndef BDIO_SIM_LATCH_H_
#define BDIO_SIM_LATCH_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/inline_fn.h"
#include "common/logging.h"

namespace bdio::sim {

/// Countdown latch for fan-in completion: create with the number of pending
/// arms, call Arrive() (or invoke an Arm() callable) from each completion,
/// and the callback fires when the count reaches zero. Shared-pointer based
/// so arms can outlive the creator.
class Latch : public std::enable_shared_from_this<Latch> {
 public:
  /// Creates a latch expecting `count` arrivals. A zero-count latch fires
  /// immediately.
  static std::shared_ptr<Latch> Create(uint64_t count, InlineFn on_done) {
    auto latch =
        std::shared_ptr<Latch>(new Latch(count, std::move(on_done)));
    if (count == 0) latch->Fire();
    return latch;
  }

  /// Returns a callable that counts down this latch once; the callable keeps
  /// the latch alive. Small enough to stay in InlineFn's inline buffer.
  InlineFn Arm() {
    auto self = shared_from_this();
    return InlineFn([self]() { self->Arrive(); });
  }

  void Arrive() {
    BDIO_CHECK(remaining_ > 0) << "latch over-arrived";
    if (--remaining_ == 0) Fire();
  }

  /// Adds more expected arrivals (only valid before the latch fires).
  void Extend(uint64_t count) {
    BDIO_CHECK(!fired_) << "cannot extend a fired latch";
    remaining_ += count;
  }

  uint64_t remaining() const { return remaining_; }
  bool fired() const { return fired_; }

 private:
  Latch(uint64_t count, InlineFn on_done)
      : remaining_(count), on_done_(std::move(on_done)) {}

  void Fire() {
    if (fired_) return;
    fired_ = true;
    if (on_done_) {
      InlineFn cb = std::move(on_done_);
      on_done_ = nullptr;
      cb();
    }
  }

  uint64_t remaining_;
  bool fired_ = false;
  InlineFn on_done_;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_LATCH_H_
