#ifndef BDIO_SIM_EVENT_POOL_H_
#define BDIO_SIM_EVENT_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_fn.h"
#include "common/units.h"

namespace bdio::sim {

/// One scheduled event. Nodes live in EventPool blocks: they are allocated
/// and recycled through the pool's freelist and NEVER move, so the calendar
/// queue can hold raw pointers across its own rebucketing.
///
/// Pool lifetime rules (also see docs/PERFORMANCE.md):
///  - a node is owned by the scheduler queue from Push until Pop;
///  - Simulator::Step moves `fn` out and frees the node BEFORE invoking the
///    callback, so a callback scheduling new events may reuse the node it
///    was carried by — never touch an EventNode after Free;
///  - `free_next` is meaningful only while the node sits on the freelist.
struct EventNode {
  SimTime time;
  uint64_t seq = 0;           ///< Tie-break: insertion order.
  EventNode* free_next = nullptr;
  InlineFn fn;
};

/// Bump-then-freelist allocator for EventNodes. Nodes are carved from
/// fixed-size aligned blocks (256 nodes, ~28 KiB — a few cache-resident
/// pages) and recycled LIFO so the hot scheduling loop keeps hitting the
/// same warm nodes instead of the global allocator.
class EventPool {
 public:
  static constexpr size_t kBlockNodes = 256;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  EventNode* Alloc() {
    if (free_ == nullptr) Grow();
    EventNode* n = free_;
    free_ = n->free_next;
    return n;
  }

  /// Returns a node to the freelist. The node's `fn` must already be empty
  /// (moved out) or is destroyed here; the caller must hold no other
  /// pointers to the node.
  void Free(EventNode* n) {
    n->fn.reset();
    n->free_next = free_;
    free_ = n;
  }

  /// Nodes ever allocated (capacity, not live count) — for stats/tests.
  size_t capacity() const { return blocks_.size() * kBlockNodes; }

 private:
  struct alignas(64) Block {
    EventNode nodes[kBlockNodes];
  };

  void Grow() {
    blocks_.push_back(std::make_unique<Block>());
    Block* b = blocks_.back().get();
    // Link the fresh nodes in address order; LIFO reuse keeps recency.
    for (size_t i = kBlockNodes; i > 0; --i) {
      b->nodes[i - 1].free_next = free_;
      free_ = &b->nodes[i - 1];
    }
  }

  EventNode* free_ = nullptr;
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_EVENT_POOL_H_
