#ifndef BDIO_SIM_CALENDAR_QUEUE_H_
#define BDIO_SIM_CALENDAR_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/event_pool.h"

namespace bdio::sim {

/// Calendar-queue pending-event set (Brown 1988) over pooled EventNodes.
///
/// Time is divided into power-of-two-width buckets ("days") that wrap over
/// a power-of-two bucket array (a "year"); an event lands in bucket
/// `(time >> shift) & (nbuckets - 1)`. Each bucket keeps its events in a
/// binary min-heap ordered by (time, seq), so extraction scans forward from
/// the current day and pops the head of the first bucket holding an event
/// of that day. With the bucket width tracking the mean event spacing
/// (recomputed on resize), push and pop are O(1) amortized versus the
/// O(log n) sift of a global binary heap — and the bucket heaps stay small
/// and cache-resident.
///
/// Determinism: (time, seq) is a total order over events — seq is unique —
/// so any correct priority queue, this one included, yields the exact same
/// pop sequence as the reference heap. Equal-time events share a bucket by
/// construction and their heap breaks the tie by seq.
///
/// Ownership: the queue holds raw EventNode pointers; nodes are owned by
/// the Simulator's EventPool and must stay live from Push until Pop.
class CalendarQueue {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  void Push(EventNode* n);

  /// Returns the (time, seq)-minimal node, or nullptr when empty. Advances
  /// internal search state but not queue contents.
  EventNode* PeekMin();

  /// Removes and returns the minimal node, or nullptr when empty.
  EventNode* PopMin();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Introspection for tests and the performance handbook.
  size_t bucket_count() const { return buckets_.size(); }
  uint32_t bucket_shift() const { return shift_; }

 private:
  using Bucket = std::vector<EventNode*>;

  static bool Earlier(const EventNode* a, const EventNode* b) {
    if (a->time != b->time) return a->time < b->time;
    return a->seq < b->seq;
  }
  /// std heap comparator: "less" = later, so the heap front is earliest.
  struct HeapCmp {
    bool operator()(const EventNode* a, const EventNode* b) const {
      return Earlier(b, a);
    }
  };

  uint64_t EpochOf(SimTime t) const { return t.ns() >> shift_; }
  size_t BucketIndex(uint64_t epoch) const {
    return static_cast<size_t>(epoch) & (buckets_.size() - 1);
  }

  /// Locates the minimal node: scans one full year from cur_epoch_, then
  /// falls back to a direct sweep when events are sparser than a year.
  /// Leaves cur_epoch_ at the found node's epoch.
  EventNode* FindMin();

  /// Rebuckets every node into `nbuckets` buckets, re-deriving the bucket
  /// width from the observed event-time span.
  void Resize(size_t nbuckets);

  std::vector<Bucket> buckets_;
  uint32_t shift_ = 20;  ///< Bucket width = 2^shift_ ns (~1 ms initially).
  size_t size_ = 0;
  /// Lower bound on the minimal pending event's epoch (time >> shift_):
  /// the extraction scan starts here. Pushing an earlier event rewinds it.
  uint64_t cur_epoch_ = 0;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_CALENDAR_QUEUE_H_
