#ifndef BDIO_SIM_SEMAPHORE_H_
#define BDIO_SIM_SEMAPHORE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "common/logging.h"
#include "sim/simulator.h"

namespace bdio::sim {

/// Asynchronous counting semaphore for simulated resources (task slots,
/// queue-depth tokens, memory grants). Acquire() either succeeds immediately
/// or queues the continuation; Release() hands the token to the oldest
/// waiter at the current simulated instant.
class Semaphore {
 public:
  Semaphore(Simulator* sim, uint64_t tokens)
      : sim_(sim), available_(tokens), capacity_(tokens) {
    BDIO_CHECK(sim != nullptr);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Requests one token; `on_granted` runs (via the event queue) once the
  /// token is held.
  void Acquire(std::function<void()> on_granted) {
    if (available_ > 0) {
      --available_;
      sim_->ScheduleAfter(SimDuration{}, std::move(on_granted));
    } else {
      waiters_.push_back(std::move(on_granted));
    }
  }

  /// Returns one token, waking the oldest waiter if any.
  void Release() {
    if (!waiters_.empty()) {
      auto next = std::move(waiters_.front());
      waiters_.pop_front();
      sim_->ScheduleAfter(SimDuration{}, std::move(next));
    } else {
      ++available_;
      BDIO_CHECK(available_ <= capacity_) << "semaphore over-released";
    }
  }

  uint64_t available() const { return available_; }
  uint64_t capacity() const { return capacity_; }
  size_t waiters() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  uint64_t available_;
  uint64_t capacity_;
  std::deque<std::function<void()>> waiters_;
};

}  // namespace bdio::sim

#endif  // BDIO_SIM_SEMAPHORE_H_
