#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace bdio::sim {

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  BDIO_CHECK(t >= now_) << "cannot schedule in the past: t=" << t
                        << " now=" << now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out so the callback
  // can schedule further events (including at the same timestamp).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  if (post_event_hook_) post_event_hook_();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

ScopedLogClock::ScopedLogClock(const Simulator* sim) {
  SetThreadLogClock(
      [](const void* ctx) {
        return static_cast<const Simulator*>(ctx)->Now();
      },
      sim);
}

ScopedLogClock::~ScopedLogClock() { ClearThreadLogClock(); }

}  // namespace bdio::sim
