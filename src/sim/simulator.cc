#include "sim/simulator.h"

#include "common/logging.h"

namespace bdio::sim {

bool Simulator::Step() {
  EventNode* n = queue_.PopMin();
  if (n == nullptr) return false;
  now_ = n->time;
  ++events_processed_;
  // Move the callback out and recycle the node before invoking: the
  // callback is free to schedule new events (including at the same
  // timestamp) and they may reuse this very node.
  InlineFn fn = std::move(n->fn);
  pool_.Free(n);
  if (fn) fn();  // a null callback is a valid no-op event
  if (post_event_hook_) post_event_hook_();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  for (EventNode* head = queue_.PeekMin();
       head != nullptr && head->time <= t; head = queue_.PeekMin()) {
    Step();
  }
  if (now_ < t) now_ = t;
}

ScopedLogClock::ScopedLogClock(const Simulator* sim) {
  SetThreadLogClock(
      [](const void* ctx) {
        return static_cast<const Simulator*>(ctx)->Now().ns();
      },
      sim);
}

ScopedLogClock::~ScopedLogClock() { ClearThreadLogClock(); }

}  // namespace bdio::sim
