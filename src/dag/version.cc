namespace bdio::dag {

const char* ModuleName() { return "dag"; }

}  // namespace bdio::dag
