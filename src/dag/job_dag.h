#ifndef BDIO_DAG_JOB_DAG_H_
#define BDIO_DAG_JOB_DAG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace bdio::dag {

/// Index of a node within a JobDag; assigned in append order and stable for
/// the dag's lifetime.
using NodeId = uint32_t;

/// One vertex of the dag: a simulated MR job plus its scheduling identity.
struct DagNode {
  mapreduce::SimJobSpec spec;
  /// Nodes that must complete before this one is submitted. For nodes in
  /// DagSpec::nodes the entries are absolute ids and must be smaller than
  /// the node's own index (acyclic by construction); for nodes returned by
  /// an IterationController they are 0-based indices *within the returned
  /// batch* (intra-round ordering) — dependencies on all earlier rounds are
  /// implicit, because a round is only built after the previous one
  /// completed.
  std::vector<NodeId> deps;
  /// Scheduler pool/weight the node's job is submitted under (fair-share
  /// policies split slots per pool; see docs/SCHEDULING.md).
  std::string pool = "default";
  double weight = 1.0;
};

/// What one completed round looked like, handed to the controller so the
/// convergence predicate can read the simulated job counters.
struct RoundResult {
  uint32_t round = 0;
  std::vector<NodeId> nodes;  ///< Ascending id order.
  /// Per-node counters, parallel to `nodes`.
  std::vector<mapreduce::JobCounters> counters;
};

/// Data-driven iteration: after every round completes, NextRound decides —
/// from the round's job counters and whatever workload model the controller
/// carries — whether to enqueue another round. Returning an empty vector
/// means the iteration converged and the dag drains.
class IterationController {
 public:
  virtual ~IterationController() = default;
  virtual std::vector<DagNode> NextRound(const RoundResult& completed) = 0;
};

/// What the dag does when a node's job completes with an error.
struct RetryPolicy {
  /// Resubmissions allowed per node beyond its first attempt. 0 (the
  /// default) is fail-fast: the first node failure ends the dag, exactly
  /// the pre-policy behavior.
  uint32_t max_node_retries = 0;
  enum class OnExhausted {
    /// Stop submitting, drain in-flight nodes, finish with the first error.
    kFailDag,
    /// Write the node off, transitively skip its not-yet-submitted
    /// dependents, and keep going — the dag finishes OK but degraded
    /// (JobDag::degraded(), per-node ledger flags).
    kSkipSubtree,
  };
  OnExhausted on_exhausted = OnExhausted::kFailDag;
};

/// A dag execution request: the static round-0 nodes, an optional iteration
/// controller growing the dag round by round, the intermediate-data
/// lifecycle policy, and the node-failure policy.
struct DagSpec {
  std::string name = "dag";
  std::vector<DagNode> nodes;  ///< Round 0.
  /// Null = static dag (the round-0 nodes are the whole dag).
  std::shared_ptr<IterationController> controller;
  /// Delete a node's HDFS output once every consumer of it completed (a
  /// consumer is a node whose input_path is the output_path or a file under
  /// it). Outputs nothing consumes are final results and always retained.
  bool expire_intermediates = true;
  /// Hard cap on controller-built rounds (including round 0) — a safety net
  /// against non-converging predicates, not a tuning knob.
  uint32_t max_rounds = 64;
  /// Node-failure handling (retries, then fail-dag or skip-subtree).
  RetryPolicy retry;
};

/// Ledger entry for one node (introspection for benches/tests).
struct NodeRecord {
  NodeId id = 0;
  uint32_t round = 0;
  std::string name;
  /// Counters of the node's *last* attempt (earlier failed attempts'
  /// wasted I/O is visible in the engine's mr.retry.* totals).
  mapreduce::JobCounters counters;
  uint32_t attempts = 0;  ///< Engine submissions; > 1 means it was retried.
  uint32_t failures = 0;  ///< Attempts that completed with an error.
  /// Never submitted: written off because an ancestor exhausted its retry
  /// budget under RetryPolicy::OnExhausted::kSkipSubtree.
  bool skipped = false;
  /// Message of the most recent failed attempt ("" if none failed). An
  /// exhausted node reads failures == attempts > 0 here.
  std::string last_error;
};

/// Ledger entry for one completed round: sim-time extent, member nodes, the
/// round's aggregate volumes, and the intermediate-data churn attributed to
/// it (bytes of *this round's outputs* deleted once consumed).
struct RoundRecord {
  uint32_t round = 0;
  SimTime start_time;
  SimTime end_time;
  std::vector<NodeId> nodes;
  uint64_t hdfs_read_bytes = 0;
  uint64_t hdfs_write_bytes = 0;
  uint64_t intermediate_write_bytes = 0;
  uint64_t shuffle_network_bytes = 0;
  uint64_t expired_bytes = 0;
  uint64_t expired_files = 0;
  // Compute-churn attributed to the round: resubmissions, failed attempts,
  // and nodes written off without running.
  uint32_t retries = 0;
  uint32_t failures = 0;
  uint32_t skipped = 0;
};

/// Deterministic dependency-dag driver over MrEngine's multi-job core.
///
/// Responsibilities (the iteration machinery every chained workload needs,
/// hoisted out of the workloads themselves):
///  - submits nodes whose dependencies completed, always in ascending
///    NodeId order — the fixed tie-break that keeps execution byte-identical
///    across --jobs levels and repeated runs;
///  - runs the IterationController after each round's barrier, appending
///    the returned nodes as the next round (data-driven iteration);
///  - manages the per-round HDFS lifecycle: a round's outputs are published
///    to the next round as inputs, and once the last consumer of an output
///    completes the files are deleted (the intermediate-data churn of
///    iterative jobs), charged to the mr.dag.* counters.
///
/// Contract for iterative dags: a round may read only preloaded datasets or
/// the *immediately preceding* round's outputs. Registering a consumer for
/// an already-expired path is a plan bug and aborts.
///
/// One JobDag per (sim, engine) run; not reusable after Run.
class JobDag {
 public:
  JobDag(sim::Simulator* sim, mapreduce::MrEngine* engine, hdfs::Hdfs* hdfs,
         DagSpec spec);

  JobDag(const JobDag&) = delete;
  JobDag& operator=(const JobDag&) = delete;

  /// Attaches a metrics registry (may be null): the dag mirrors its plain
  /// counters into mr.dag.* counters labelled {dag="<name>"}. Call before
  /// Run.
  void AttachObs(obs::MetricsRegistry* metrics);

  using DoneCallback = std::function<void(Status)>;

  /// Starts the dag. `done` fires (in a scheduled event) once every node
  /// completed or was skipped. A node failure is first retried up to
  /// RetryPolicy::max_node_retries times; once exhausted, kFailDag drains
  /// in-flight nodes and reports the first error, while kSkipSubtree writes
  /// the node and its unsubmitted dependents off and finishes OK but
  /// degraded. Call once.
  void Run(DoneCallback done);

  // --- Introspection (stable after `done` fired) -------------------------
  const std::string& name() const { return spec_.name; }
  uint32_t nodes_submitted() const { return nodes_submitted_; }
  uint32_t nodes_completed() const { return nodes_completed_; }
  uint32_t rounds_completed() const {
    return static_cast<uint32_t>(round_records_.size());
  }
  /// Node resubmissions (retry events) across the whole dag.
  uint32_t node_retries() const { return node_retries_; }
  /// Node attempts that completed with an error.
  uint32_t node_failures() const { return node_failures_; }
  /// Nodes that exhausted their retry budget.
  uint32_t nodes_written_off() const { return nodes_written_off_; }
  /// Nodes never submitted (skip-subtree write-offs).
  uint32_t nodes_skipped() const { return nodes_skipped_; }
  /// True once any node was written off or skipped — the dag's result is
  /// partial even if Run reported OK (kSkipSubtree).
  bool degraded() const {
    return nodes_written_off_ > 0 || nodes_skipped_ > 0;
  }
  /// Per-node ledger in NodeId order (includes not-yet-finished nodes).
  const std::vector<NodeRecord>& node_records() const {
    return node_records_;
  }
  /// Per-round ledger in completion (= round) order.
  const std::vector<RoundRecord>& round_records() const {
    return round_records_;
  }
  /// Bytes of dag outputs handed to a later node as input (the per-round
  /// publish volume), and the subset already deleted after consumption.
  uint64_t intermediate_published_bytes() const {
    return published_bytes_;
  }
  uint64_t intermediate_expired_bytes() const { return expired_bytes_; }
  uint64_t intermediate_expired_files() const { return expired_files_; }

  /// Cross-checks the dag's bookkeeping (bdio::invariants):
  ///  - counters consistent: completed <= submitted <= node count, expiry
  ///    never exceeds publication, recounts match the node states;
  ///  - no orphaned intermediates: an expired path has no files left in the
  ///    HDFS namespace (every block of a retired round is gone);
  ///  - producer/consumer ledger sane (consumers_done bounded, expired
  ///    implies fully consumed);
  ///  - iteration counters monotone across audits (rounds/nodes/bytes never
  ///    move backwards between two calls);
  ///  - retry ledger sane: skipped nodes were never submitted, per-record
  ///    attempt/failure tallies match the dag totals, and a written-off
  ///    node exhausted exactly its budget.
  /// Read-only with respect to simulation state; returns "" when every
  /// invariant holds.
  std::string AuditInvariants() const;

 private:
  /// Per-node execution state.
  struct NodeState {
    DagNode node;
    uint32_t round = 0;
    uint32_t pending_deps = 0;
    bool submitted = false;
    bool done = false;
    uint32_t failures = 0;  ///< Failed attempts so far (retry budget).
    bool skipped = false;   ///< Written off without being submitted.
    std::vector<NodeId> dependents;
    /// Produced paths this node reads (its side of the consumer ledger).
    std::vector<std::string> consumed_paths;
  };
  /// Lifecycle of one dag-produced HDFS path.
  struct Produced {
    NodeId producer = 0;
    bool producer_done = false;
    bool published = false;  ///< Had >= 1 consumer when the producer closed.
    bool expired = false;
    uint32_t consumers_total = 0;
    uint32_t consumers_done = 0;
    uint64_t bytes = 0;  ///< Final size, measured at publish time.
  };

  /// Appends `batch` as round `round`, translating intra-batch deps to
  /// absolute ids and registering producers/consumers.
  void AppendRound(std::vector<DagNode> batch, uint32_t round);
  /// Registers `id` as consumer of any produced path its input matches.
  void RegisterConsumer(NodeId id);
  /// Publishes a closed output once its first consumer exists: measures the
  /// final size and charges it to the published-bytes counters.
  void MaybePublish(const std::string& path, Produced* produced);
  void SubmitReady();
  void OnNodeDone(NodeId id, const Status& status,
                  const mapreduce::JobCounters& counters);
  /// Submits node `id`'s job to the engine (first attempt and retries).
  void SubmitNode(NodeId id);
  /// Releases every input `state` holds on the consumer ledger, expiring
  /// fully-consumed published paths (shared by completion and skip).
  void ReleaseConsumed(const NodeState& state);
  /// Transitively writes off every not-yet-submitted dependent of `root`
  /// (kSkipSubtree): marks them skipped, releases their consumer claims,
  /// and retires them from the round barrier.
  void SkipSubtree(NodeId root);
  /// Seals the current round's record and asks the controller for the next.
  void FinishRound();
  /// Deletes every HDFS file under a fully-consumed path and charges the
  /// churn to the producer round's record.
  void ExpirePath(const std::string& path, Produced* produced);
  /// (bytes, files) currently in the namespace under `path` (exact match or
  /// "<path>/..." — prefix-with-boundary, so /x/iter1 never sweeps
  /// /x/iter10).
  std::pair<uint64_t, uint64_t> MeasurePath(const std::string& path) const;
  void MaybeFinish();

  sim::Simulator* sim_;
  mapreduce::MrEngine* engine_;
  hdfs::Hdfs* hdfs_;
  DagSpec spec_;
  DoneCallback done_;
  bool running_ = false;
  bool failed_ = false;
  Status first_error_;

  std::vector<NodeState> nodes_;
  std::vector<NodeRecord> node_records_;
  std::vector<RoundRecord> round_records_;
  /// Nodes of the newest round not yet completed (the round barrier).
  uint32_t round_remaining_ = 0;
  uint32_t current_round_ = 0;
  SimTime round_start_;
  uint32_t in_flight_ = 0;
  uint32_t nodes_submitted_ = 0;
  uint32_t nodes_completed_ = 0;
  uint32_t node_retries_ = 0;
  uint32_t node_failures_ = 0;
  uint32_t nodes_written_off_ = 0;
  uint32_t nodes_skipped_ = 0;
  uint64_t published_bytes_ = 0;
  uint64_t expired_bytes_ = 0;
  uint64_t expired_files_ = 0;
  /// Output-path lifecycle ledger; ordered so every sweep is deterministic.
  std::map<std::string, Produced> produced_;
  /// Engine job id -> NodeId, resolved by the completion hook.
  std::map<uint32_t, NodeId> engine_job_to_node_;
  /// Churn charged to a round whose record is not sealed yet (static dags
  /// expiring within their own round): round -> (bytes, files).
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> pending_expired_;

  // Monotonicity watermarks for AuditInvariants (audit bookkeeping only —
  // never read by the simulation, so audits stay behavior-neutral).
  mutable uint32_t audit_rounds_seen_ = 0;
  mutable uint32_t audit_completed_seen_ = 0;
  mutable uint64_t audit_expired_seen_ = 0;

  // Optional mr.dag.* mirrors.
  obs::Counter* m_nodes_submitted_ = nullptr;
  obs::Counter* m_nodes_completed_ = nullptr;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_published_bytes_ = nullptr;
  obs::Counter* m_expired_bytes_ = nullptr;
  obs::Counter* m_expired_files_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_skipped_ = nullptr;
};

}  // namespace bdio::dag

#endif  // BDIO_DAG_JOB_DAG_H_
