#include "dag/job_dag.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "hdfs/name_node.h"

namespace bdio::dag {
namespace {

/// True when `path` is `root` itself or a file under `root`/ — the boundary
/// check keeps /x/iter1 from claiming /x/iter10's files.
bool UnderPath(const std::string& path, const std::string& root) {
  if (path == root) return true;
  if (path.size() <= root.size() + 1) return false;
  return path.compare(0, root.size(), root) == 0 && path[root.size()] == '/';
}

}  // namespace

JobDag::JobDag(sim::Simulator* sim, mapreduce::MrEngine* engine,
               hdfs::Hdfs* hdfs, DagSpec spec)
    : sim_(sim), engine_(engine), hdfs_(hdfs), spec_(std::move(spec)) {
  BDIO_CHECK(sim_ != nullptr);
  BDIO_CHECK(engine_ != nullptr);
  BDIO_CHECK(hdfs_ != nullptr);
  BDIO_CHECK(spec_.max_rounds > 0);
}

void JobDag::AttachObs(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  BDIO_CHECK(!running_);
  const obs::Labels labels = {{"dag", spec_.name}};
  m_nodes_submitted_ = metrics->GetCounter("mr.dag.nodes_submitted", labels);
  m_nodes_completed_ = metrics->GetCounter("mr.dag.nodes_completed", labels);
  m_rounds_ = metrics->GetCounter("mr.dag.rounds_completed", labels);
  m_published_bytes_ =
      metrics->GetCounter("mr.dag.intermediate_published_bytes", labels);
  m_expired_bytes_ =
      metrics->GetCounter("mr.dag.intermediate_expired_bytes", labels);
  m_expired_files_ =
      metrics->GetCounter("mr.dag.intermediate_expired_files", labels);
  m_retries_ = metrics->GetCounter("mr.dag.node_retries", labels);
  m_failures_ = metrics->GetCounter("mr.dag.node_failures", labels);
  m_skipped_ = metrics->GetCounter("mr.dag.nodes_skipped", labels);
}

void JobDag::Run(DoneCallback done) {
  BDIO_CHECK(done != nullptr);
  BDIO_CHECK(!running_);
  running_ = true;
  done_ = std::move(done);
  engine_->AddJobCompletionHook(
      [this](uint32_t job_id, const Status& status,
             const mapreduce::JobCounters& counters) {
        auto it = engine_job_to_node_.find(job_id);
        if (it == engine_job_to_node_.end()) return;  // Not one of ours.
        OnNodeDone(it->second, status, counters);
      });
  std::vector<DagNode> initial = std::move(spec_.nodes);
  spec_.nodes.clear();
  if (initial.empty()) {
    sim_->ScheduleAfter(SimDuration{}, [this] { done_(Status::OK()); });
    return;
  }
  round_start_ = sim_->Now();
  AppendRound(std::move(initial), /*round=*/0);
  round_remaining_ = static_cast<uint32_t>(nodes_.size());
  SubmitReady();
}

void JobDag::AppendRound(std::vector<DagNode> batch, uint32_t round) {
  const NodeId first_new_id = static_cast<NodeId>(nodes_.size());
  for (DagNode& node : batch) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    NodeState state;
    state.round = round;
    if (round > 0) {
      // Controller batches carry intra-batch indices; rebase to ids.
      for (NodeId& dep : node.deps) {
        BDIO_CHECK(first_new_id + dep < id);
        dep += first_new_id;
      }
    } else {
      for (const NodeId dep : node.deps) BDIO_CHECK(dep < id);
    }
    state.pending_deps = static_cast<uint32_t>(node.deps.size());
    for (const NodeId dep : node.deps) nodes_[dep].dependents.push_back(id);
    BDIO_CHECK(!node.spec.output_path.empty());
    auto [pit, inserted] = produced_.emplace(node.spec.output_path, Produced{});
    BDIO_CHECK(inserted);  // Two nodes writing one path would shadow blocks.
    pit->second.producer = id;
    state.node = std::move(node);
    nodes_.push_back(std::move(state));
    NodeRecord record;
    record.id = id;
    record.round = round;
    record.name = nodes_[id].node.spec.name;
    node_records_.push_back(std::move(record));
    RegisterConsumer(id);
  }
}

void JobDag::RegisterConsumer(NodeId id) {
  const std::string& input = nodes_[id].node.spec.input_path;
  for (auto& [path, produced] : produced_) {
    if (produced.producer == id) continue;
    if (!UnderPath(input, path)) continue;
    BDIO_CHECK(!produced.expired);  // Reading a retired round is a plan bug.
    ++produced.consumers_total;
    nodes_[id].consumed_paths.push_back(path);
    MaybePublish(path, &produced);
  }
}

void JobDag::MaybePublish(const std::string& path, Produced* produced) {
  if (produced->published || !produced->producer_done ||
      produced->consumers_total == 0) {
    return;
  }
  const auto [bytes, files] = MeasurePath(path);
  produced->published = true;
  produced->bytes = bytes;
  published_bytes_ += bytes;
  if (m_published_bytes_ != nullptr) m_published_bytes_->Add(bytes);
  (void)files;
  // Every consumer may already have released its claim — skipped subtrees
  // release before their producer finishes. Nobody will ever read this
  // path, so it expires the instant it is published.
  if (spec_.expire_intermediates &&
      produced->consumers_done == produced->consumers_total) {
    ExpirePath(path, produced);
  }
}

void JobDag::SubmitReady() {
  if (failed_) return;
  // Ascending NodeId is the fixed tie-break: ready nodes always reach the
  // engine (and therefore the scheduler's admission order) in id order.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    NodeState& state = nodes_[id];
    if (state.submitted || state.skipped || state.pending_deps != 0) {
      continue;
    }
    state.submitted = true;
    ++nodes_submitted_;
    ++in_flight_;
    if (m_nodes_submitted_ != nullptr) m_nodes_submitted_->Add(1);
    SubmitNode(id);
  }
}

void JobDag::SubmitNode(NodeId id) {
  NodeState& state = nodes_[id];
  ++node_records_[id].attempts;
  const uint32_t job_id = engine_->SubmitJob(
      state.node.spec, [](Status, const mapreduce::JobCounters&) {},
      state.node.pool, state.node.weight);
  engine_job_to_node_.emplace(job_id, id);
}

void JobDag::OnNodeDone(NodeId id, const Status& status,
                        const mapreduce::JobCounters& counters) {
  NodeState& state = nodes_[id];
  BDIO_CHECK(state.submitted && !state.done);
  node_records_[id].counters = counters;
  if (!status.ok()) {
    ++state.failures;
    ++node_failures_;
    node_records_[id].failures = state.failures;
    node_records_[id].last_error = status.message();
    if (m_failures_ != nullptr) m_failures_->Add(1);
    if (!failed_ && state.failures <= spec_.retry.max_node_retries) {
      // Retry: resubmit the same spec under the same scheduling identity.
      // The node stays in flight — none of its barrier, producer, or
      // consumer bookkeeping moves until an attempt settles it for good.
      ++node_retries_;
      if (m_retries_ != nullptr) m_retries_->Add(1);
      SubmitNode(id);
      return;
    }
  }
  state.done = true;
  ++nodes_completed_;
  BDIO_CHECK(in_flight_ > 0);
  --in_flight_;
  BDIO_CHECK(round_remaining_ > 0);
  --round_remaining_;
  if (m_nodes_completed_ != nullptr) m_nodes_completed_->Add(1);
  if (!status.ok()) {
    ++nodes_written_off_;
    if (spec_.retry.on_exhausted == RetryPolicy::OnExhausted::kSkipSubtree &&
        !failed_) {
      SkipSubtree(id);
    } else if (!failed_) {
      failed_ = true;
      first_error_ =
          Status(status.code(), "dag '" + spec_.name + "' node '" +
                                    state.node.spec.name +
                                    "': " + status.message());
    }
  }

  // Producer side: the node's output is closed; publish it if a consumer is
  // already registered (static dags), else publication waits for the
  // controller to emit one.
  auto pit = produced_.find(state.node.spec.output_path);
  BDIO_CHECK(pit != produced_.end());
  pit->second.producer_done = true;
  MaybePublish(pit->first, &pit->second);

  // Consumer side: release every input this node held; fully-consumed
  // published paths expire (the per-round intermediate churn).
  ReleaseConsumed(state);

  for (const NodeId dependent : state.dependents) {
    if (nodes_[dependent].skipped) continue;  // Already written off.
    BDIO_CHECK(nodes_[dependent].pending_deps > 0);
    --nodes_[dependent].pending_deps;
  }

  if (round_remaining_ == 0 && !failed_) {
    FinishRound();
  }
  SubmitReady();
  MaybeFinish();
}

void JobDag::ReleaseConsumed(const NodeState& state) {
  for (const std::string& path : state.consumed_paths) {
    auto it = produced_.find(path);
    BDIO_CHECK(it != produced_.end());
    Produced& produced = it->second;
    BDIO_CHECK(produced.consumers_done < produced.consumers_total);
    ++produced.consumers_done;
    if (spec_.expire_intermediates && produced.published &&
        !produced.expired &&
        produced.consumers_done == produced.consumers_total) {
      ExpirePath(path, &produced);
    }
  }
}

void JobDag::SkipSubtree(NodeId root) {
  // Depth-first over dependents in declaration order — a fixed traversal,
  // so the HDFS deletions ReleaseConsumed may trigger happen in the same
  // order every run. Dependents of a failed node were never submitted
  // (their dep on `root` was never released), so every write-off retires a
  // live entry of the current round's barrier. Skipped consumers release
  // their input claims: the data they will never read must still expire.
  std::vector<NodeId> worklist = {root};
  while (!worklist.empty()) {
    const NodeId id = worklist.back();
    worklist.pop_back();
    for (const NodeId dep_id : nodes_[id].dependents) {
      NodeState& dependent = nodes_[dep_id];
      if (dependent.skipped) continue;
      BDIO_CHECK(!dependent.submitted);
      BDIO_CHECK(dependent.round == current_round_);
      dependent.skipped = true;
      node_records_[dep_id].skipped = true;
      ++nodes_skipped_;
      if (m_skipped_ != nullptr) m_skipped_->Add(1);
      BDIO_CHECK(round_remaining_ > 0);
      --round_remaining_;
      ReleaseConsumed(dependent);
      worklist.push_back(dep_id);
    }
  }
}

void JobDag::FinishRound() {
  RoundRecord record;
  record.round = current_round_;
  record.start_time = round_start_;
  record.end_time = sim_->Now();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].round != current_round_) continue;
    record.nodes.push_back(id);
    const mapreduce::JobCounters& c = node_records_[id].counters;
    record.hdfs_read_bytes += c.hdfs_read_bytes;
    record.hdfs_write_bytes += c.hdfs_write_bytes;
    record.intermediate_write_bytes += c.intermediate_write_bytes;
    record.shuffle_network_bytes += c.shuffle_network_bytes;
    const NodeRecord& nr = node_records_[id];
    if (nr.attempts > 1) record.retries += nr.attempts - 1;
    record.failures += nr.failures;
    if (nr.skipped) ++record.skipped;
  }
  auto pending = pending_expired_.find(current_round_);
  if (pending != pending_expired_.end()) {
    record.expired_bytes = pending->second.first;
    record.expired_files = pending->second.second;
    pending_expired_.erase(pending);
  }
  round_records_.push_back(std::move(record));
  if (m_rounds_ != nullptr) m_rounds_->Add(1);

  if (spec_.controller == nullptr) return;
  if (current_round_ + 1 >= spec_.max_rounds) return;
  RoundResult result;
  result.round = current_round_;
  result.nodes = round_records_.back().nodes;
  for (const NodeId id : result.nodes) {
    result.counters.push_back(node_records_[id].counters);
  }
  std::vector<DagNode> next = spec_.controller->NextRound(result);
  if (next.empty()) return;  // Converged.
  ++current_round_;
  round_start_ = sim_->Now();
  const size_t before = nodes_.size();
  AppendRound(std::move(next), current_round_);
  round_remaining_ = static_cast<uint32_t>(nodes_.size() - before);
}

void JobDag::ExpirePath(const std::string& path, Produced* produced) {
  BDIO_CHECK(!produced->expired);
  // Collect first: List() hands out pointers into the namespace map that
  // Delete() invalidates.
  std::vector<std::pair<std::string, uint64_t>> victims;
  for (const hdfs::FileEntry* entry : hdfs_->name_node()->List(path)) {
    if (!UnderPath(entry->path, path)) continue;
    victims.emplace_back(entry->path, entry->bytes);
  }
  uint64_t bytes = 0;
  for (const auto& [file, file_bytes] : victims) {
    BDIO_CHECK_OK(hdfs_->Delete(file));
    bytes += file_bytes;
  }
  const uint64_t files = victims.size();
  produced->expired = true;
  expired_bytes_ += bytes;
  expired_files_ += files;
  if (m_expired_bytes_ != nullptr) m_expired_bytes_->Add(bytes);
  if (m_expired_files_ != nullptr) m_expired_files_->Add(files);
  // Charge the churn to the round that *produced* the data. That round's
  // record usually exists by now (consumers live in a later round); inside a
  // static single-round dag it does not yet, so park the charge.
  const uint32_t producer_round = nodes_[produced->producer].round;
  if (producer_round < round_records_.size()) {
    round_records_[producer_round].expired_bytes += bytes;
    round_records_[producer_round].expired_files += files;
  } else {
    auto& slot = pending_expired_[producer_round];
    slot.first += bytes;
    slot.second += files;
  }
}

std::pair<uint64_t, uint64_t> JobDag::MeasurePath(
    const std::string& path) const {
  uint64_t bytes = 0;
  uint64_t files = 0;
  for (const hdfs::FileEntry* entry : hdfs_->name_node()->List(path)) {
    if (!UnderPath(entry->path, path)) continue;
    bytes += entry->bytes;
    ++files;
  }
  return {bytes, files};
}

void JobDag::MaybeFinish() {
  if (done_ == nullptr || in_flight_ > 0) return;
  if (failed_) {
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    done(first_error_);
    return;
  }
  // Skipped nodes never complete; a degraded dag (kSkipSubtree) finishes
  // OK once everything else has.
  if (nodes_completed_ + nodes_skipped_ == nodes_.size()) {
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    done(Status::OK());
  }
}

std::string JobDag::AuditInvariants() const {
  std::ostringstream problems;
  uint32_t submitted = 0;
  uint32_t completed = 0;
  for (const NodeState& state : nodes_) {
    if (state.submitted) ++submitted;
    if (state.done) ++completed;
    if (state.done && !state.submitted) {
      problems << "dag " << spec_.name << ": node done without submission; ";
    }
  }
  uint32_t skipped = 0;
  uint32_t retries = 0;
  uint32_t failures = 0;
  uint32_t written_off = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const NodeState& state = nodes_[id];
    const NodeRecord& record = node_records_[id];
    if (state.skipped) {
      ++skipped;
      if (state.submitted || state.done || record.attempts != 0) {
        problems << "dag " << spec_.name << ": node " << id
                 << " skipped despite being submitted; ";
      }
    }
    if (record.failures > record.attempts) {
      problems << "dag " << spec_.name << ": node " << id
               << " records more failures than attempts; ";
    }
    if (record.attempts > 1) retries += record.attempts - 1;
    failures += record.failures;
    // A written-off node is a completed node every attempt of which failed
    // (success settles a node immediately, so a survivor always has
    // failures < attempts).
    if (state.done && record.attempts > 0 &&
        record.failures == record.attempts) {
      ++written_off;
    }
  }
  if (skipped != nodes_skipped_ || retries != node_retries_ ||
      failures != node_failures_ || written_off != nodes_written_off_) {
    problems << "dag " << spec_.name << ": retry ledger recount mismatch ("
             << skipped << "/" << nodes_skipped_ << " skipped, " << retries
             << "/" << node_retries_ << " retries, " << failures << "/"
             << node_failures_ << " failures, " << written_off << "/"
             << nodes_written_off_ << " written off); ";
  }
  if (submitted != nodes_submitted_ || completed != nodes_completed_) {
    problems << "dag " << spec_.name << ": node recount mismatch (submitted "
             << submitted << " vs " << nodes_submitted_ << ", completed "
             << completed << " vs " << nodes_completed_ << "); ";
  }
  if (nodes_completed_ > nodes_submitted_ ||
      nodes_submitted_ > nodes_.size()) {
    problems << "dag " << spec_.name << ": counter ordering violated ("
             << nodes_completed_ << " done, " << nodes_submitted_
             << " submitted, " << nodes_.size() << " nodes); ";
  }
  if (in_flight_ != nodes_submitted_ - nodes_completed_) {
    problems << "dag " << spec_.name << ": in_flight " << in_flight_
             << " != submitted - completed; ";
  }
  if (expired_bytes_ > published_bytes_) {
    problems << "dag " << spec_.name << ": expired bytes " << expired_bytes_
             << " exceed published " << published_bytes_ << "; ";
  }
  for (const auto& [path, produced] : produced_) {
    if (produced.consumers_done > produced.consumers_total) {
      problems << "dag " << spec_.name << ": path " << path
               << " has more consumers done than registered; ";
    }
    if (spec_.expire_intermediates && produced.published &&
        !produced.expired &&
        produced.consumers_done == produced.consumers_total) {
      problems << "dag " << spec_.name << ": path " << path
               << " is fully consumed but never expired; ";
    }
    if (produced.expired) {
      if (!produced.producer_done ||
          produced.consumers_done != produced.consumers_total ||
          produced.consumers_total == 0) {
        problems << "dag " << spec_.name << ": path " << path
                 << " expired before being fully consumed; ";
      }
      // The load-bearing lifecycle check: a retired round must leave no
      // orphaned blocks in the namespace.
      const auto [bytes, files] = MeasurePath(path);
      if (bytes != 0 || files != 0) {
        problems << "dag " << spec_.name << ": expired path " << path
                 << " still holds " << files << " files / " << bytes
                 << " bytes; ";
      }
    }
  }
  uint32_t prev_round = 0;
  SimTime prev_end;
  bool first = true;
  for (const RoundRecord& record : round_records_) {
    if (record.end_time < record.start_time) {
      problems << "dag " << spec_.name << ": round " << record.round
               << " ends before it starts; ";
    }
    if (!first && (record.round != prev_round + 1 ||
                   record.start_time < prev_end)) {
      problems << "dag " << spec_.name << ": round sequence broken at round "
               << record.round << "; ";
    }
    prev_round = record.round;
    prev_end = record.end_time;
    first = false;
  }
  // Iteration counters must be monotone between audits.
  if (rounds_completed() < audit_rounds_seen_ ||
      nodes_completed_ < audit_completed_seen_ ||
      expired_bytes_ < audit_expired_seen_) {
    problems << "dag " << spec_.name
             << ": iteration counters moved backwards since last audit; ";
  }
  audit_rounds_seen_ = rounds_completed();
  audit_completed_seen_ = nodes_completed_;
  audit_expired_seen_ = expired_bytes_;
  return problems.str();
}

}  // namespace bdio::dag
