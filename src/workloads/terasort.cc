#include "workloads/terasort.h"

#include <algorithm>

namespace bdio::workloads {

Result<TeraSortResult> RunTeraSort(const std::vector<mrfunc::KeyValue>& input,
                                   const mrfunc::JobConfig& config) {
  // Sample up to 1000 keys for split points (the TeraSort sampler).
  std::vector<std::string> sample;
  const size_t stride = std::max<size_t>(1, input.size() / 1000);
  for (size_t i = 0; i < input.size(); i += stride) {
    sample.push_back(input[i].key);
  }
  mrfunc::TotalOrderPartitioner partitioner(
      mrfunc::TotalOrderPartitioner::SampleSplits(std::move(sample),
                                                  config.num_reduce_tasks));
  TeraSortMapper mapper;
  TeraSortReducer reducer;
  mrfunc::LocalJobRunner runner;
  TeraSortResult result;
  BDIO_ASSIGN_OR_RETURN(
      result.stats,
      runner.Run(input, &mapper, &reducer, /*combiner=*/nullptr, partitioner,
                 config, &result.output));
  return result;
}

bool IsSortedByKey(const std::vector<mrfunc::KeyValue>& records) {
  return std::is_sorted(records.begin(), records.end(),
                        [](const mrfunc::KeyValue& a,
                           const mrfunc::KeyValue& b) {
                          return a.key < b.key;
                        });
}

}  // namespace bdio::workloads
