#include "workloads/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/logging.h"
#include "common/units.h"
#include "compress/codec.h"
#include "mrfunc/local_runner.h"
#include "workloads/aggregation.h"
#include "workloads/datagen.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"
#include "workloads/terasort.h"

namespace bdio::workloads {

const char* WorkloadShortName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTeraSort:
      return "TS";
    case WorkloadKind::kAggregation:
      return "AGG";
    case WorkloadKind::kKMeans:
      return "KM";
    case WorkloadKind::kPageRank:
      return "PR";
  }
  return "?";
}

std::vector<WorkloadKind> AllWorkloads() {
  return {WorkloadKind::kAggregation, WorkloadKind::kTeraSort,
          WorkloadKind::kKMeans, WorkloadKind::kPageRank};
}

uint64_t PaperInputBytes(WorkloadKind kind) {
  // Table 3 of the paper: TeraSort 1 TB, Aggregation 512 GB; the smaller
  // K-means/PageRank datasets are GB-scale (the table's exact values are
  // garbled in the archived text; 128/64 GB match BigDataBench 2.1's
  // recommended large configurations).
  switch (kind) {
    case WorkloadKind::kTeraSort:
      return TiB(1);
    case WorkloadKind::kAggregation:
      return GiB(512);
    case WorkloadKind::kKMeans:
      return GiB(128);
    case WorkloadKind::kPageRank:
      return GiB(64);
  }
  return 0;
}

Calibration CalibrateWorkload(WorkloadKind kind, uint64_t seed) {
  Rng rng(seed);
  mrfunc::JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 4;
  config.sort_buffer_bytes = KiB(512);
  config.compress_map_output = true;  // measure the real codec's ratio

  Calibration cal;
  switch (kind) {
    case WorkloadKind::kTeraSort: {
      auto input = GenTeraSortRecords(&rng, 20000);
      auto result = RunTeraSort(input, config);
      BDIO_CHECK(result.ok());
      const auto& st = result.value().stats;
      cal.map_output_ratio = static_cast<double>(st.map_output_bytes) /
                             static_cast<double>(st.map_input_bytes);
      cal.combine_ratio = 1.0;
      cal.output_ratio = static_cast<double>(st.reduce_output_bytes) /
                         static_cast<double>(st.map_input_bytes);
      cal.compress_ratio = st.intermediate_compression_ratio;
      break;
    }
    case WorkloadKind::kAggregation: {
      config.use_combiner = true;
      auto input = GenOrderRows(&rng, 50000);
      auto result = RunAggregation(input, config);
      BDIO_CHECK(result.ok());
      const auto& st = result.value().stats;
      cal.map_output_ratio = static_cast<double>(st.map_output_bytes) /
                             static_cast<double>(st.map_input_bytes);
      // Post-combine volume relative to pre-combine, net of compression.
      cal.compress_ratio = st.intermediate_compression_ratio;
      cal.combine_ratio =
          static_cast<double>(st.spilled_bytes) /
          (static_cast<double>(st.map_output_bytes) * cal.compress_ratio);
      cal.combine_ratio = std::min(cal.combine_ratio, 1.0);
      cal.output_ratio = static_cast<double>(st.reduce_output_bytes) /
                         static_cast<double>(st.map_input_bytes);
      break;
    }
    case WorkloadKind::kKMeans: {
      config.use_combiner = true;
      auto input = GenPoints(&rng, 20000);
      auto result = RunKMeans(input, 8, 2, 1e-9, config, &rng);
      BDIO_CHECK(result.ok());
      const auto& st = result.value().iteration_stats[0];
      cal.map_output_ratio = static_cast<double>(st.map_output_bytes) /
                             static_cast<double>(st.map_input_bytes);
      cal.compress_ratio = st.intermediate_compression_ratio;
      cal.combine_ratio =
          static_cast<double>(st.spilled_bytes) /
          (static_cast<double>(st.map_output_bytes) * cal.compress_ratio);
      cal.combine_ratio = std::min(cal.combine_ratio, 1.0);
      // Output of the clustering pass relative to input.
      const auto& cl = result.value().clustering_stats;
      cal.output_ratio = static_cast<double>(cl.reduce_output_bytes) /
                         static_cast<double>(cl.map_input_bytes);
      break;
    }
    case WorkloadKind::kPageRank: {
      auto graph = GenWebGraph(&rng, 20000);
      auto result = RunPageRank(graph, 1, config);
      BDIO_CHECK(result.ok());
      const auto& st = result.value().iteration_stats[0];
      cal.map_output_ratio = static_cast<double>(st.map_output_bytes) /
                             static_cast<double>(st.map_input_bytes);
      cal.combine_ratio = 1.0;
      cal.compress_ratio = st.intermediate_compression_ratio;
      cal.output_ratio = static_cast<double>(st.reduce_output_bytes) /
                         static_cast<double>(st.map_input_bytes);
      break;
    }
  }
  return cal;
}

namespace {

/// Built-in ratios (matching CalibrateWorkload's measurements at the
/// default seed, rounded) so plans don't require a calibration run.
Calibration DefaultCalibration(WorkloadKind kind) {
  Calibration cal;
  switch (kind) {
    case WorkloadKind::kTeraSort:
      cal.map_output_ratio = 1.02;
      cal.combine_ratio = 1.0;
      cal.output_ratio = 1.0;
      cal.compress_ratio = 0.55;
      break;
    case WorkloadKind::kAggregation:
      cal.map_output_ratio = 0.25;
      cal.combine_ratio = 0.02;
      cal.output_ratio = 0.0005;
      cal.compress_ratio = 0.55;
      break;
    case WorkloadKind::kKMeans:
      cal.map_output_ratio = 1.05;
      cal.combine_ratio = 0.002;
      cal.output_ratio = 0.06;  // clustering-pass assignments
      cal.compress_ratio = 0.5;
      break;
    case WorkloadKind::kPageRank:
      cal.map_output_ratio = 1.3;
      cal.combine_ratio = 1.0;
      cal.output_ratio = 1.05;  // rank+adjacency state re-emitted
      cal.compress_ratio = 0.35;
      break;
  }
  return cal;
}

/// CPU cost model (ns per byte on a 2.4 GHz Westmere core). Documented in
/// DESIGN.md; chosen so the four workloads land on the paper's
/// CPU-bound/I/O-bound classification (Table 3).
struct CpuCosts {
  double map_ns_per_byte = 0;
  double reduce_ns_per_byte = 0;
};

/// PageRank's iteration driver, expressed as a dag controller: each round
/// is one job reading the previous round's state output. Convergence is
/// fixed-round by default; with epsilon > 0 the predicate executes the
/// functional PageRank one model iteration per round and stops once the max
/// per-node rank delta drops to epsilon (data-driven iteration). Either
/// way a round that wrote no state stops the chain (counter predicate).
class PageRankController : public dag::IterationController {
 public:
  PageRankController(mapreduce::SimJobSpec template_spec,
                     const PlanOptions& options)
      : template_spec_(std::move(template_spec)),
        fixed_iterations_(options.pagerank_iterations),
        epsilon_(options.pagerank_epsilon),
        model_nodes_(options.pagerank_model_nodes),
        seed_(options.seed) {}

  std::vector<dag::DagNode> NextRound(
      const dag::RoundResult& completed) override {
    const uint32_t next = next_iter_;
    if (epsilon_ > 0) {
      if (ModelConverged(next)) return {};
    } else if (next >= fixed_iterations_) {
      return {};
    }
    uint64_t written = 0;
    for (const mapreduce::JobCounters& counters : completed.counters) {
      written += counters.hdfs_write_bytes;
    }
    if (written == 0) return {};  // Nothing for the next round to read.
    dag::DagNode node;
    node.spec = template_spec_;
    node.spec.name = "PR-iter" + std::to_string(next);
    node.spec.input_path = "/out/PR/iter" + std::to_string(next - 1);
    node.spec.output_path = "/out/PR/iter" + std::to_string(next);
    ++next_iter_;
    return {node};
  }

 private:
  /// Advances the model run so it has executed `iters` iterations and
  /// reports whether the last one moved any rank by more than epsilon.
  bool ModelConverged(uint32_t iters) {
    if (state_.empty()) {
      // Lazy init: epsilon mode only, so fixed-round plans never pay for a
      // model graph.
      Rng rng(seed_);
      const auto graph = GenWebGraph(&rng, model_nodes_);
      const double initial = 1.0 / static_cast<double>(graph.size());
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10f", initial);
      for (const auto& kv : graph) {
        state_.push_back(
            mrfunc::KeyValue{kv.key, std::string(buf) + "|" + kv.value});
        ranks_[kv.key] = initial;
      }
      num_nodes_ = graph.size();
    }
    while (model_iters_ < iters) {
      mrfunc::JobConfig config;
      config.num_map_tasks = 4;
      config.num_reduce_tasks = 4;
      config.sort_buffer_bytes = KiB(512);
      PageRankMapper mapper;
      PageRankReducer reducer(/*damping=*/0.85, num_nodes_);
      mrfunc::LocalJobRunner runner;
      std::vector<mrfunc::KeyValue> next;
      auto stats = runner.Run(state_, &mapper, &reducer, config, &next);
      BDIO_CHECK(stats.ok());
      state_ = std::move(next);
      last_delta_ = 0;
      for (const auto& kv : state_) {
        const double rank = std::atof(kv.value.c_str());
        last_delta_ = std::max(last_delta_, std::abs(rank - ranks_[kv.key]));
        ranks_[kv.key] = rank;
      }
      ++model_iters_;
    }
    return last_delta_ <= epsilon_;
  }

  mapreduce::SimJobSpec template_spec_;
  uint32_t fixed_iterations_;
  double epsilon_;
  uint32_t model_nodes_;
  uint64_t seed_;
  uint32_t next_iter_ = 1;  ///< iter0 is in WorkloadPlan::jobs.
  // Model state (epsilon mode only).
  std::vector<mrfunc::KeyValue> state_;
  std::map<std::string, double> ranks_;
  uint64_t num_nodes_ = 0;
  uint32_t model_iters_ = 0;
  double last_delta_ = 0;
};

CpuCosts CostsFor(WorkloadKind kind, bool clustering_phase = false) {
  switch (kind) {
    case WorkloadKind::kTeraSort:
      return {3.0, 4.0};  // I/O bound
    case WorkloadKind::kAggregation:
      return {30.0, 6.0};  // CPU bound, but streams a huge input
    case WorkloadKind::kKMeans:
      // Iterations are CPU bound (distance computations); the final
      // clustering pass is I/O bound.
      return clustering_phase ? CpuCosts{12.0, 4.0} : CpuCosts{220.0, 8.0};
    case WorkloadKind::kPageRank:
      return {110.0, 45.0};  // CPU bound
  }
  return {2.0, 2.0};
}

}  // namespace

WorkloadPlan BuildPlan(WorkloadKind kind, const PlanOptions& options) {
  const Calibration cal = options.calibration != nullptr
                              ? *options.calibration
                              : DefaultCalibration(kind);
  WorkloadPlan plan;
  plan.kind = kind;
  plan.short_name = WorkloadShortName(kind);
  plan.dataset_path = std::string("/input/") + plan.short_name;
  plan.dataset_bytes = static_cast<uint64_t>(
      static_cast<double>(PaperInputBytes(kind)) * options.scale);
  // Round to whole cache units to keep accounting tidy.
  plan.dataset_bytes = std::max<uint64_t>(plan.dataset_bytes, MiB(64));

  auto base_spec = [&](const std::string& name) {
    mapreduce::SimJobSpec spec;
    spec.name = name;
    spec.map_output_ratio = cal.map_output_ratio;
    spec.combine_ratio = cal.combine_ratio;
    spec.output_ratio = cal.output_ratio;
    spec.compress_intermediate = options.compress_intermediate;
    spec.compress_ratio = cal.compress_ratio;
    const CpuCosts costs = CostsFor(kind);
    spec.map_cpu_ns_per_byte = costs.map_ns_per_byte;
    spec.reduce_cpu_ns_per_byte = costs.reduce_ns_per_byte;
    // Per-task sizings: splits (blocks) are NOT scaled, so the map-side
    // sort buffer keeps its real size; per-REDUCER volume scales with the
    // dataset, so the heap-resident shuffle buffer scales with node memory
    // to preserve the paper's merge-run counts.
    spec.shuffle_buffer_bytes = std::max<uint64_t>(
        KiB(128),
        static_cast<uint64_t>(static_cast<double>(MiB(140)) * options.scale));
    return spec;
  };

  switch (kind) {
    case WorkloadKind::kTeraSort: {
      mapreduce::SimJobSpec spec = base_spec("TS-sort");
      spec.input_path = plan.dataset_path;
      spec.output_path = "/out/TS";
      spec.output_replication = 1;  // TeraSort convention
      plan.jobs.push_back(PlannedJob{std::move(spec)});
      break;
    }
    case WorkloadKind::kAggregation: {
      mapreduce::SimJobSpec spec = base_spec("AGG-groupby");
      spec.input_path = plan.dataset_path;
      spec.output_path = "/out/AGG";
      plan.jobs.push_back(PlannedJob{std::move(spec)});
      break;
    }
    case WorkloadKind::kKMeans: {
      for (uint32_t i = 0; i < options.kmeans_iterations; ++i) {
        mapreduce::SimJobSpec spec = base_spec("KM-iter" + std::to_string(i));
        spec.input_path = plan.dataset_path;  // re-reads the points
        spec.output_path = "/out/KM/centroids" + std::to_string(i);
        spec.output_ratio = 1e-6;  // k centroids
        plan.jobs.push_back(PlannedJob{std::move(spec)});
      }
      // Final clustering pass: map-only, I/O bound.
      mapreduce::SimJobSpec spec = base_spec("KM-cluster");
      spec.input_path = plan.dataset_path;
      spec.output_path = "/out/KM/assignments";
      spec.num_reduce_tasks = 0;  // map-only
      const CpuCosts costs = CostsFor(kind, /*clustering_phase=*/true);
      spec.map_cpu_ns_per_byte = costs.map_ns_per_byte;
      spec.output_ratio = cal.output_ratio;
      plan.jobs.push_back(PlannedJob{std::move(spec)});
      break;
    }
    case WorkloadKind::kPageRank: {
      // Only the first iteration is planned statically; the controller
      // appends iter1.. through the JobDag driver, retiring each round's
      // state once the next round consumed it.
      mapreduce::SimJobSpec spec = base_spec("PR-iter0");
      spec.input_path = plan.dataset_path;
      spec.output_path = "/out/PR/iter0";
      plan.jobs.push_back(PlannedJob{std::move(spec)});
      if (options.pagerank_iterations > 1 || options.pagerank_epsilon > 0) {
        plan.iteration = std::make_shared<PageRankController>(
            base_spec("PR-iter"), options);
      }
      plan.expire_intermediates = true;
      break;
    }
  }
  return plan;
}

}  // namespace bdio::workloads
