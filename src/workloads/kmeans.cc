#include "workloads/kmeans.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace bdio::workloads {

Point ParsePoint(const std::string& s) {
  Point p;
  const char* c = s.c_str();
  char* end = nullptr;
  while (*c != '\0') {
    const double v = std::strtod(c, &end);
    if (end == c) break;
    p.push_back(v);
    c = (*end == ',') ? end + 1 : end;
    if (*end == '\0') break;
  }
  return p;
}

std::string FormatPoint(const Point& p) {
  std::string out;
  char buf[32];
  for (size_t i = 0; i < p.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f", p[i]);
    if (i) out += ',';
    out += buf;
  }
  return out;
}

double SquaredDistance(const Point& a, const Point& b) {
  BDIO_CHECK(a.size() == b.size());
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

uint32_t KMeansMapper::Nearest(const Point& p) const {
  uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < centroids_.size(); ++i) {
    const double d = SquaredDistance(p, centroids_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

void KMeansMapper::Map(const mrfunc::KeyValue& record,
                       mrfunc::Emitter* out) {
  const Point p = ParsePoint(record.value);
  if (p.size() != centroids_[0].size()) return;  // skip malformed
  const uint32_t c = Nearest(p);
  out->Emit(std::to_string(c), "1|" + record.value);
}

void KMeansReducer::Reduce(const std::string& key,
                           const std::vector<std::string>& values,
                           mrfunc::Emitter* out) {
  uint64_t count = 0;
  Point sum;
  for (const std::string& v : values) {
    const size_t bar = v.find('|');
    if (bar == std::string::npos) continue;
    count += std::strtoull(v.c_str(), nullptr, 10);
    const Point p = ParsePoint(v.substr(bar + 1));
    if (sum.empty()) sum.assign(p.size(), 0.0);
    if (p.size() != sum.size()) continue;
    for (size_t i = 0; i < p.size(); ++i) sum[i] += p[i];
  }
  if (count == 0) return;
  if (emit_centroid_) {
    Point mean(sum.size());
    for (size_t i = 0; i < sum.size(); ++i) {
      mean[i] = sum[i] / static_cast<double>(count);
    }
    out->Emit(key, FormatPoint(mean));
  } else {
    out->Emit(key, std::to_string(count) + "|" + FormatPoint(sum));
  }
}

Result<KMeansResult> RunKMeans(const std::vector<mrfunc::KeyValue>& points,
                               uint32_t k, uint32_t max_iterations,
                               double epsilon,
                               const mrfunc::JobConfig& config, Rng* rng) {
  if (points.empty()) return Status::InvalidArgument("no points");
  if (k == 0) return Status::InvalidArgument("k must be positive");

  KMeansResult result;
  // Forgy initialization: k distinct random points.
  for (uint32_t i = 0; i < k; ++i) {
    const Point p =
        ParsePoint(points[rng->Uniform(points.size())].value);
    if (p.empty()) return Status::InvalidArgument("malformed point");
    result.centroids.push_back(p);
  }

  mrfunc::LocalJobRunner runner;
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    KMeansMapper mapper(result.centroids);
    KMeansReducer reducer(/*emit_centroid=*/true);
    KMeansReducer combiner(/*emit_centroid=*/false);
    mrfunc::HashPartitioner partitioner;
    std::vector<mrfunc::KeyValue> output;
    BDIO_ASSIGN_OR_RETURN(
        mrfunc::JobStats stats,
        runner.Run(points, &mapper, &reducer, &combiner, partitioner, config,
                   &output));
    result.iteration_stats.push_back(stats);
    ++result.iterations;

    std::vector<Point> next = result.centroids;
    for (const auto& kv : output) {
      const uint32_t idx =
          static_cast<uint32_t>(std::strtoul(kv.key.c_str(), nullptr, 10));
      if (idx < next.size()) next[idx] = ParsePoint(kv.value);
    }
    double shift = 0;
    for (uint32_t i = 0; i < k; ++i) {
      shift += SquaredDistance(result.centroids[i], next[i]);
    }
    result.centroids = std::move(next);
    if (shift < epsilon) break;
  }

  // Clustering pass: assign every point to its final centroid. In Hadoop
  // this is a map-only job; functionally we evaluate the mapper directly
  // and account volumes as a map-only job would.
  KMeansMapper final_mapper(result.centroids);
  result.assignments.reserve(points.size());
  for (const auto& kv : points) {
    const Point p = ParsePoint(kv.value);
    result.clustering_stats.map_input_records++;
    result.clustering_stats.map_input_bytes += mrfunc::SerializedSize(kv);
    const uint32_t c = p.empty() ? 0 : final_mapper.Nearest(p);
    result.assignments.push_back(c);
    result.clustering_stats.reduce_output_records++;
    result.clustering_stats.reduce_output_bytes +=
        kv.key.size() + 1 + std::to_string(c).size();
  }
  return result;
}

}  // namespace bdio::workloads
