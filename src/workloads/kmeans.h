#ifndef BDIO_WORKLOADS_KMEANS_H_
#define BDIO_WORKLOADS_KMEANS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// A point in R^d.
using Point = std::vector<double>;

/// Parses "x1,x2,...". Returns empty on malformed input.
Point ParsePoint(const std::string& s);
std::string FormatPoint(const Point& p);
double SquaredDistance(const Point& a, const Point& b);

/// K-means iteration map: assign each point to its nearest centroid and emit
/// (centroid_id, "count|sum_vector") partials — the classic MapReduce
/// K-means with combinable partial sums.
class KMeansMapper : public mrfunc::Mapper {
 public:
  explicit KMeansMapper(std::vector<Point> centroids)
      : centroids_(std::move(centroids)) {}
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;

  /// Index of the centroid nearest to `p`.
  uint32_t Nearest(const Point& p) const;

 private:
  std::vector<Point> centroids_;
};

/// Merges "count|sum_vector" partials; used as both combiner and reducer
/// (the reducer's final emit is the new centroid: sum/count).
class KMeansReducer : public mrfunc::Reducer {
 public:
  /// If `emit_centroid`, emits the averaged centroid; otherwise emits the
  /// merged partial (combiner mode).
  explicit KMeansReducer(bool emit_centroid)
      : emit_centroid_(emit_centroid) {}
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;

 private:
  bool emit_centroid_;
};

/// Result of the iterative K-means driver.
struct KMeansResult {
  std::vector<Point> centroids;
  uint32_t iterations = 0;
  /// Per-iteration framework counters (the calibration source).
  std::vector<mrfunc::JobStats> iteration_stats;
  /// Final clustering pass counters.
  mrfunc::JobStats clustering_stats;
  /// Cluster id per input point (the clustering phase output).
  std::vector<uint32_t> assignments;
};

/// Runs Lloyd's algorithm as chained MapReduce jobs until centroids move
/// less than `epsilon` (squared) or `max_iterations` is hit, then one
/// clustering pass assigning every point (the paper's I/O-bound phase).
Result<KMeansResult> RunKMeans(const std::vector<mrfunc::KeyValue>& points,
                               uint32_t k, uint32_t max_iterations,
                               double epsilon,
                               const mrfunc::JobConfig& config, Rng* rng);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_KMEANS_H_
