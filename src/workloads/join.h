#ifndef BDIO_WORKLOADS_JOIN_H_
#define BDIO_WORKLOADS_JOIN_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// The other Hive query the paper names (Section 1: "SQL operations, such
/// as join, aggregation and select"): a reduce-side repartition join of the
/// orders fact table with a users dimension table on user id.
///
/// Input records are tagged by table: key "O" for an order row
/// ("uid|category|price|quantity|date"), key "U" for a user row
/// ("uid|name|country"). The map emits (uid, tag '|' row); the reduce pairs
/// every order with its user row (inner join).
class JoinMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Joins the per-uid record group: emits one "user_row;order_row" record
/// per (user, order) pair.
class JoinReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

/// Dimension-table rows: "uid|name|country" for uids [0, count).
std::vector<mrfunc::KeyValue> GenUserRows(Rng* rng, size_t count);

/// Tags and concatenates the two tables into one MapReduce input.
std::vector<mrfunc::KeyValue> TagJoinInput(
    const std::vector<mrfunc::KeyValue>& orders,
    const std::vector<mrfunc::KeyValue>& users);

struct JoinResult {
  std::vector<mrfunc::KeyValue> output;  ///< key = uid, value = joined row.
  mrfunc::JobStats stats;
};

/// Runs the repartition join.
Result<JoinResult> RunJoin(const std::vector<mrfunc::KeyValue>& orders,
                           const std::vector<mrfunc::KeyValue>& users,
                           const mrfunc::JobConfig& config);

/// Reference hash join for verification: uid -> joined rows.
std::multimap<std::string, std::string> ReferenceJoin(
    const std::vector<mrfunc::KeyValue>& orders,
    const std::vector<mrfunc::KeyValue>& users);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_JOIN_H_
