#include "workloads/join.h"

#include <cstdio>

#include "common/logging.h"

namespace bdio::workloads {

namespace {
/// First '|'-delimited field of a row (the uid in both tables).
std::string UidOf(const std::string& row) {
  const size_t bar = row.find('|');
  return bar == std::string::npos ? row : row.substr(0, bar);
}

const char* const kCountries[] = {"cn", "us", "de", "jp", "br", "in"};
}  // namespace

void JoinMapper::Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) {
  if (record.key != "O" && record.key != "U") return;  // unknown table
  const std::string uid = UidOf(record.value);
  if (uid.empty()) return;
  out->Emit(uid, record.key + "|" + record.value);
}

void JoinReducer::Reduce(const std::string& key,
                         const std::vector<std::string>& values,
                         mrfunc::Emitter* out) {
  // Split the group into the (at most one) user row and the order rows.
  std::string user_row;
  std::vector<const std::string*> orders;
  for (const std::string& v : values) {
    if (v.size() < 2 || v[1] != '|') continue;
    if (v[0] == 'U') {
      user_row = v.substr(2);
    } else if (v[0] == 'O') {
      orders.push_back(&v);
    }
  }
  if (user_row.empty()) return;  // inner join: unmatched orders drop
  for (const std::string* order : orders) {
    out->Emit(key, user_row + ";" + order->substr(2));
  }
}

std::vector<mrfunc::KeyValue> GenUserRows(Rng* rng, size_t count) {
  std::vector<mrfunc::KeyValue> out;
  out.reserve(count);
  char buf[96];
  for (size_t uid = 0; uid < count; ++uid) {
    std::snprintf(buf, sizeof(buf), "%zu|user%zu|%s", uid, uid,
                  kCountries[rng->Uniform(6)]);
    out.push_back(mrfunc::KeyValue{"U", buf});
  }
  return out;
}

std::vector<mrfunc::KeyValue> TagJoinInput(
    const std::vector<mrfunc::KeyValue>& orders,
    const std::vector<mrfunc::KeyValue>& users) {
  std::vector<mrfunc::KeyValue> input;
  input.reserve(orders.size() + users.size());
  for (const auto& kv : orders) {
    input.push_back(mrfunc::KeyValue{"O", kv.value});
  }
  for (const auto& kv : users) {
    input.push_back(mrfunc::KeyValue{"U", kv.value});
  }
  return input;
}

Result<JoinResult> RunJoin(const std::vector<mrfunc::KeyValue>& orders,
                           const std::vector<mrfunc::KeyValue>& users,
                           const mrfunc::JobConfig& config) {
  const std::vector<mrfunc::KeyValue> input = TagJoinInput(orders, users);
  JoinMapper mapper;
  JoinReducer reducer;
  mrfunc::LocalJobRunner runner;
  JoinResult result;
  BDIO_ASSIGN_OR_RETURN(result.stats, runner.Run(input, &mapper, &reducer,
                                                 config, &result.output));
  return result;
}

std::multimap<std::string, std::string> ReferenceJoin(
    const std::vector<mrfunc::KeyValue>& orders,
    const std::vector<mrfunc::KeyValue>& users) {
  std::map<std::string, std::string> user_by_uid;
  for (const auto& kv : users) {
    user_by_uid[UidOf(kv.value)] = kv.value;
  }
  std::multimap<std::string, std::string> joined;
  for (const auto& kv : orders) {
    const std::string uid = UidOf(kv.value);
    auto it = user_by_uid.find(uid);
    if (it != user_by_uid.end()) {
      joined.emplace(uid, it->second + ";" + kv.value);
    }
  }
  return joined;
}

}  // namespace bdio::workloads
