#include "workloads/datagen.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

namespace {
const char* const kWords[] = {
    "data",   "center",  "disk",  "cache", "query",  "index", "shard",
    "block",  "replica", "merge", "spill", "sort",   "scan",  "join",
    "hadoop", "stream",  "batch", "node",  "worker", "page"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string SkewedText(Rng* rng, size_t len) {
  std::string s;
  s.reserve(len + 8);
  while (s.size() < len) {
    s += kWords[rng->Zipf(kNumWords, 0.9)];
    s += ' ';
  }
  s.resize(len);
  return s;
}
}  // namespace

std::vector<mrfunc::KeyValue> GenTeraSortRecords(Rng* rng, size_t count) {
  std::vector<mrfunc::KeyValue> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string key(10, 0);
    for (auto& c : key) {
      c = static_cast<char>(' ' + rng->Uniform(95));  // printable
    }
    out.push_back(mrfunc::KeyValue{std::move(key), SkewedText(rng, 90)});
  }
  return out;
}

std::vector<mrfunc::KeyValue> GenOrderRows(Rng* rng, size_t count,
                                           uint32_t num_categories) {
  std::vector<mrfunc::KeyValue> out;
  out.reserve(count);
  char buf[160];
  for (size_t i = 0; i < count; ++i) {
    const uint64_t uid = rng->Zipf(1000000, 0.8);
    const uint64_t category = rng->Zipf(num_categories, 0.7);
    const double price = rng->UniformDouble(0.5, 500.0);
    const uint64_t quantity = 1 + rng->Uniform(9);
    std::snprintf(buf, sizeof(buf),
                  "%llu|cat%llu|%.2f|%llu|2013-%02llu-%02llu",
                  static_cast<unsigned long long>(uid),
                  static_cast<unsigned long long>(category), price,
                  static_cast<unsigned long long>(quantity),
                  static_cast<unsigned long long>(1 + rng->Uniform(12)),
                  static_cast<unsigned long long>(1 + rng->Uniform(28)));
    out.push_back(mrfunc::KeyValue{std::to_string(i), buf});
  }
  return out;
}

std::vector<mrfunc::KeyValue> GenPoints(Rng* rng, size_t count,
                                        uint32_t centers, uint32_t dims,
                                        double spread) {
  BDIO_CHECK(centers > 0 && dims > 0);
  // Draw the mixture centers first, reproducibly.
  std::vector<std::vector<double>> mu(centers, std::vector<double>(dims));
  for (auto& c : mu) {
    for (auto& v : c) v = rng->UniformDouble(0, 1);
  }
  std::vector<mrfunc::KeyValue> out;
  out.reserve(count);
  char buf[32];
  for (size_t i = 0; i < count; ++i) {
    const auto& c = mu[rng->Uniform(centers)];
    std::string value;
    for (uint32_t d = 0; d < dims; ++d) {
      const double x = c[d] + rng->Gaussian(0, spread);
      std::snprintf(buf, sizeof(buf), "%.5f", x);
      if (d) value += ',';
      value += buf;
    }
    out.push_back(mrfunc::KeyValue{std::to_string(i), std::move(value)});
  }
  return out;
}

std::vector<mrfunc::KeyValue> GenWebGraph(Rng* rng, size_t nodes,
                                          double avg_out_degree) {
  BDIO_CHECK(nodes > 1);
  // Preferential attachment over edge endpoints: new edges point to the
  // endpoint of a random existing edge with probability p, else uniform.
  std::vector<std::vector<uint64_t>> adj(nodes);
  std::vector<uint64_t> endpoints;
  endpoints.reserve(static_cast<size_t>(avg_out_degree) * nodes);
  for (size_t v = 1; v < nodes; ++v) {
    const uint64_t degree = 1 + rng->Poisson(avg_out_degree - 1);
    for (uint64_t e = 0; e < degree; ++e) {
      uint64_t dst;
      if (!endpoints.empty() && rng->Bernoulli(0.7)) {
        dst = endpoints[rng->Uniform(endpoints.size())];
      } else {
        dst = rng->Uniform(v);  // earlier node
      }
      adj[v].push_back(dst);
      endpoints.push_back(dst);
      endpoints.push_back(v);
    }
  }
  std::vector<mrfunc::KeyValue> out;
  out.reserve(nodes);
  for (size_t v = 0; v < nodes; ++v) {
    std::string value;
    for (size_t k = 0; k < adj[v].size(); ++k) {
      if (k) value += ' ';
      value += std::to_string(adj[v][k]);
    }
    out.push_back(mrfunc::KeyValue{std::to_string(v), std::move(value)});
  }
  return out;
}

uint64_t DatasetBytes(const std::vector<mrfunc::KeyValue>& records) {
  uint64_t total = 0;
  for (const auto& kv : records) total += mrfunc::SerializedSize(kv);
  return total;
}

}  // namespace bdio::workloads
