#ifndef BDIO_WORKLOADS_TERASORT_H_
#define BDIO_WORKLOADS_TERASORT_H_

#include <vector>

#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// TeraSort's map: identity (sorting is done by the framework's sort and
/// the total-order partitioner).
class TeraSortMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override {
    out->Emit(record.key, record.value);
  }
};

/// TeraSort's reduce: identity over every value.
class TeraSortReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override {
    for (const std::string& v : values) out->Emit(key, v);
  }
};

/// Result of a functional TeraSort run.
struct TeraSortResult {
  std::vector<mrfunc::KeyValue> output;
  mrfunc::JobStats stats;
};

/// Runs TeraSort over `input` with a sampled total-order partitioner, so the
/// concatenation of reduce outputs is globally sorted.
Result<TeraSortResult> RunTeraSort(const std::vector<mrfunc::KeyValue>& input,
                                   const mrfunc::JobConfig& config);

/// True iff records are sorted by key (ties allowed).
bool IsSortedByKey(const std::vector<mrfunc::KeyValue>& records);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_TERASORT_H_
