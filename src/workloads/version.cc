namespace bdio::workloads {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "workloads"; }
}  // namespace bdio::workloads
