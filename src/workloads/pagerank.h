#ifndef BDIO_WORKLOADS_PAGERANK_H_
#define BDIO_WORKLOADS_PAGERANK_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// PageRank iteration map over records (node, "rank|adjacency"): re-emits
/// the structure ("A|adjacency") and one contribution ("C|rank/outdeg") per
/// successor — the textbook MapReduce formulation.
class PageRankMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// PageRank iteration reduce: new_rank = (1-d)/N + d * sum(contributions),
/// re-attaching the adjacency list.
class PageRankReducer : public mrfunc::Reducer {
 public:
  PageRankReducer(double damping, uint64_t num_nodes)
      : damping_(damping), num_nodes_(num_nodes) {}
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;

 private:
  double damping_;
  uint64_t num_nodes_;
};

/// Result of the iterative driver. `ranks` is ordered by node key so
/// consumers that iterate it (reports, tests) see a deterministic order
/// (rule R1).
struct PageRankResult {
  std::map<std::string, double> ranks;
  uint32_t iterations = 0;
  std::vector<mrfunc::JobStats> iteration_stats;
};

/// Runs `iterations` PageRank steps over adjacency-list records
/// (node -> "succ1 succ2 ..."), damping 0.85.
Result<PageRankResult> RunPageRank(
    const std::vector<mrfunc::KeyValue>& graph, uint32_t iterations,
    const mrfunc::JobConfig& config, double damping = 0.85);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_PAGERANK_H_
