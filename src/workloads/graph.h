#ifndef BDIO_WORKLOADS_GRAPH_H_
#define BDIO_WORKLOADS_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// Iterative graph analytics over the preferential-attachment web graph
/// (GenWebGraph), in the MR-MPI style: each round is one MapReduce job over
/// per-node state records, and a driver loops until the frontier drains.
/// These functional implementations are the correctness reference and the
/// calibration source for the simulated graph dags (graph_profile.h).
///
/// Record formats (all node ids are plain decimal strings, compared
/// numerically):
///  - adjacency (GenWebGraph / symmetrize output): key = node,
///    value = "succ1 succ2 ..."
///  - SSSP state: key = node, value = "<dist>|<frontier>|<adj>" where dist
///    is a hop count (kInfDist = unreached) and frontier is 1 iff the node's
///    distance improved last round
///  - CC state: key = node, value = "<label>|<frontier>|<adj>" where label
///    is the smallest node id seen in the node's component so far

/// Sentinel distance for unreached nodes.
inline constexpr uint64_t kInfDist = ~0ull;

/// Numeric order for decimal node-id strings ("9" < "10").
bool NumericLess(const std::string& a, const std::string& b);

// --- Prepare: symmetrize the directed graph ------------------------------

/// Emits both directions of every arc plus a self marker so isolated nodes
/// survive the reduce.
class SymmetrizeMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Dedupes neighbors and emits the undirected adjacency list in numeric
/// order (deterministic output for any input order).
class SymmetrizeReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

// --- SSSP (BFS frontier expansion, min-distance reduce) ------------------

/// Re-emits node structure ("S|<dist>|<adj>") and, for frontier nodes, a
/// distance candidate ("D|<dist+1>") to every neighbor.
class SsspMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Min-reduce over distance candidates; sets the frontier flag iff the
/// node's distance improved (it will expand next round).
class SsspReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

// --- Connected components (min-label propagation) ------------------------

/// Re-emits structure and, for frontier nodes, the node's current label to
/// every neighbor.
class CcMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Keeps the numerically smallest label seen; flags the node when its label
/// shrank (label delta still propagating).
class CcReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

// --- Triangle counting (wedge generation + edge-marker closure) ----------

/// For each node: emits a wedge marker ("W") keyed by every neighbor pair
/// and an edge marker ("E") keyed by every incident edge (both keys
/// "lo,hi" in numeric order). One job closes wedges against edges.
class TriangleMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Emits the number of closed wedges per edge key; every triangle closes
/// exactly three wedges, so triangles = sum(closures) / 3.
class TriangleReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

// --- State builders and functional drivers -------------------------------

/// Attaches SSSP state to an undirected adjacency list: source at distance
/// 0 in the frontier, everyone else unreached.
std::vector<mrfunc::KeyValue> MakeSsspState(
    const std::vector<mrfunc::KeyValue>& adjacency, const std::string& source);

/// Attaches CC state: every node labelled with its own id, all in the
/// frontier.
std::vector<mrfunc::KeyValue> MakeCcState(
    const std::vector<mrfunc::KeyValue>& adjacency);

/// Per-round accounting of an iterative driver: the frontier/update sizes
/// the convergence predicate reads, plus the round's MR volume counters.
struct GraphRoundStats {
  uint32_t round = 0;       ///< 1-based round number.
  uint64_t frontier = 0;    ///< Nodes flagged for expansion *after* the round.
  uint64_t updated = 0;     ///< Nodes whose state changed this round.
  mrfunc::JobStats stats;
};

struct SsspResult {
  /// Final hop distance per node (kInfDist = unreachable), node-key order.
  std::map<std::string, uint64_t> distance;
  uint32_t rounds = 0;
  std::vector<GraphRoundStats> round_stats;
  mrfunc::JobStats prepare_stats;
  uint64_t reached = 0;  ///< Nodes at finite distance.
};

struct CcResult {
  /// Final component label per node, node-key order.
  std::map<std::string, std::string> label;
  uint64_t components = 0;
  uint32_t rounds = 0;
  std::vector<GraphRoundStats> round_stats;
  mrfunc::JobStats prepare_stats;
};

struct TriResult {
  uint64_t triangles = 0;
  uint64_t closed_wedges = 0;  ///< == 3 * triangles.
  mrfunc::JobStats prepare_stats;
  mrfunc::JobStats count_stats;
};

/// Symmetrizes `graph` (one MR job) and runs BFS SSSP rounds from `source`
/// until the frontier is empty or `max_rounds` is hit.
Result<SsspResult> RunSssp(const std::vector<mrfunc::KeyValue>& graph,
                           const std::string& source,
                           const mrfunc::JobConfig& config,
                           uint32_t max_rounds = 64);

/// Symmetrizes `graph` and propagates minimum labels until no label
/// changes or `max_rounds` is hit.
Result<CcResult> RunConnectedComponents(
    const std::vector<mrfunc::KeyValue>& graph,
    const mrfunc::JobConfig& config, uint32_t max_rounds = 64);

/// Symmetrizes `graph` and counts triangles with one wedge-closure job.
Result<TriResult> RunTriangleCount(const std::vector<mrfunc::KeyValue>& graph,
                                   const mrfunc::JobConfig& config);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_GRAPH_H_
