#ifndef BDIO_WORKLOADS_DFSIO_H_
#define BDIO_WORKLOADS_DFSIO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "hdfs/hdfs.h"

namespace bdio::workloads {

/// TestDFSIO-style raw storage benchmark: N concurrent tasks each write one
/// file to HDFS, then (optionally) N tasks each read one file back. The
/// classic tool for sizing a Hadoop cluster's storage layer, here usable
/// against the simulated testbed.
struct DfsioSpec {
  uint32_t num_files = 16;
  uint64_t file_bytes = MiB(128);
  uint32_t replication = 3;
  bool run_read_phase = true;
  /// Readers run on a different node than the file's writer (forces remote
  /// or replica reads); TestDFSIO's map placement is similarly arbitrary.
  bool remote_readers = false;
  std::string path_prefix = "/benchmarks/TestDFSIO";
};

/// Aggregate results in TestDFSIO's terms.
struct DfsioResult {
  double write_seconds = 0;
  double read_seconds = 0;
  /// Aggregate logical throughput (sum of file bytes / phase time).
  double write_mb_s = 0;
  double read_mb_s = 0;
  uint64_t bytes_per_file = 0;
  uint32_t num_files = 0;
};

/// Runs the benchmark on the given testbed; `done` fires with the results
/// once all phases complete. Drive the simulator to completion after
/// calling (sim.Run()).
void RunDfsio(cluster::Cluster* cluster, hdfs::Hdfs* dfs,
              const DfsioSpec& spec,
              std::function<void(Result<DfsioResult>)> done);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_DFSIO_H_
