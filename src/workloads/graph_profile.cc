#include "workloads/graph_profile.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/units.h"
#include "workloads/datagen.h"
#include "workloads/graph.h"

namespace bdio::workloads {

const char* GraphWorkloadShortName(GraphWorkload workload) {
  switch (workload) {
    case GraphWorkload::kSssp:
      return "SSSP";
    case GraphWorkload::kConnectedComponents:
      return "CC";
    case GraphWorkload::kTriangleCount:
      return "TRI";
  }
  return "?";
}

std::vector<GraphWorkload> AllGraphWorkloads() {
  return {GraphWorkload::kSssp, GraphWorkload::kConnectedComponents,
          GraphWorkload::kTriangleCount};
}

uint64_t PaperGraphInputBytes() { return GiB(64); }

namespace {

/// Per-byte CPU costs (same cost-model family as profile.cc's CostsFor):
/// traversal rounds are lighter than PageRank's float math; the wedge
/// explosion of triangle counting is cheap per byte because most bytes are
/// tiny emitted markers.
struct GraphCpuCosts {
  double map_ns_per_byte = 0;
  double reduce_ns_per_byte = 0;
};

GraphCpuCosts GraphCostsFor(GraphWorkload workload) {
  switch (workload) {
    case GraphWorkload::kSssp:
      return {60.0, 25.0};
    case GraphWorkload::kConnectedComponents:
      return {60.0, 25.0};
    case GraphWorkload::kTriangleCount:
      return {45.0, 12.0};
  }
  return {60.0, 25.0};
}

/// Volume ratios of one measured functional job.
struct RoundRatios {
  double map_output_ratio = 1.0;
  double output_ratio = 1.0;
  double compress_ratio = 0.5;
};

RoundRatios RatiosFrom(const mrfunc::JobStats& stats) {
  RoundRatios ratios;
  BDIO_CHECK(stats.map_input_bytes > 0);
  ratios.map_output_ratio = static_cast<double>(stats.map_output_bytes) /
                            static_cast<double>(stats.map_input_bytes);
  ratios.output_ratio = static_cast<double>(stats.reduce_output_bytes) /
                        static_cast<double>(stats.map_input_bytes);
  ratios.compress_ratio = stats.intermediate_compression_ratio;
  return ratios;
}

/// Builds one simulated round/prepare job spec from measured ratios.
mapreduce::SimJobSpec MakeSpecFromRatios(const std::string& name,
                                         const RoundRatios& ratios,
                                         GraphWorkload workload,
                                         const GraphPlanOptions& options) {
  mapreduce::SimJobSpec spec;
  spec.name = name;
  spec.map_output_ratio = ratios.map_output_ratio;
  spec.combine_ratio = 1.0;  // No combiner in the graph jobs.
  spec.output_ratio = ratios.output_ratio;
  spec.compress_intermediate = options.compress_intermediate;
  spec.compress_ratio = ratios.compress_ratio;
  const GraphCpuCosts costs = GraphCostsFor(workload);
  spec.map_cpu_ns_per_byte = costs.map_ns_per_byte;
  spec.reduce_cpu_ns_per_byte = costs.reduce_ns_per_byte;
  // Same per-task sizing rationale as profile.cc's base_spec: splits keep
  // their real size, the heap-resident shuffle buffer scales with memory.
  spec.shuffle_buffer_bytes = std::max<uint64_t>(
      KiB(128),
      static_cast<uint64_t>(static_cast<double>(MiB(140)) * options.scale));
  return spec;
}

/// Replays the model run's remaining rounds as dag rounds: round k's spec
/// carries the ratios the functional round k measured, reading round k-1's
/// published output. Converges when the model's schedule ends — or earlier,
/// if the simulated counters say a round produced no state to read.
class ReplayRoundsController : public dag::IterationController {
 public:
  ReplayRoundsController(std::vector<mapreduce::SimJobSpec> round_specs,
                         std::string out_root, uint32_t emitted)
      : round_specs_(std::move(round_specs)),
        out_root_(std::move(out_root)),
        next_round_(emitted) {}

  void set_pool(std::string pool, double weight) {
    pool_ = std::move(pool);
    weight_ = weight;
  }

  std::vector<dag::DagNode> NextRound(
      const dag::RoundResult& completed) override {
    if (next_round_ >= round_specs_.size()) return {};  // Model converged.
    // Counter predicate: the next round reads the just-completed round's
    // HDFS output; nothing written means the frontier drained for real.
    uint64_t written = 0;
    for (const mapreduce::JobCounters& counters : completed.counters) {
      written += counters.hdfs_write_bytes;
    }
    if (written == 0) return {};
    dag::DagNode node;
    node.spec = round_specs_[next_round_];
    node.spec.input_path = out_root_ + "/round" + std::to_string(next_round_);
    node.spec.output_path =
        out_root_ + "/round" + std::to_string(next_round_ + 1);
    node.pool = pool_;
    node.weight = weight_;
    ++next_round_;
    return {node};
  }

 private:
  std::vector<mapreduce::SimJobSpec> round_specs_;  ///< By round index.
  std::string out_root_;
  size_t next_round_;  ///< Index of the next round to emit.
  std::string pool_ = "default";
  double weight_ = 1.0;
};

}  // namespace

GraphDagPlan BuildGraphDag(GraphWorkload workload,
                           const GraphPlanOptions& options) {
  BDIO_CHECK(options.model_nodes > 1);
  BDIO_CHECK(options.max_rounds > 0);

  GraphDagPlan plan;
  plan.workload = workload;
  plan.short_name = GraphWorkloadShortName(workload);
  plan.dataset_path = std::string("/input/") + plan.short_name;
  plan.dataset_bytes = static_cast<uint64_t>(
      static_cast<double>(PaperGraphInputBytes()) * options.scale);
  plan.dataset_bytes = std::max<uint64_t>(plan.dataset_bytes, MiB(64));
  plan.dag.name = plan.short_name;
  plan.dag.expire_intermediates = true;
  plan.dag.max_rounds = options.max_rounds + 1;  // +1: the prepare round.

  // Execute the functional algorithm at model scale; its measured per-round
  // stats parameterize the simulated jobs.
  Rng rng(options.seed);
  std::vector<mrfunc::KeyValue> graph = GenWebGraph(&rng, options.model_nodes);
  mrfunc::JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 4;
  config.sort_buffer_bytes = KiB(512);
  config.compress_map_output = true;  // Measure the real codec's ratio.

  const std::string out_root = std::string("/out/") + plan.short_name;
  mrfunc::JobStats prepare_stats;
  std::vector<mrfunc::JobStats> round_stats;

  switch (workload) {
    case GraphWorkload::kSssp: {
      auto result = RunSssp(graph, "0", config, options.max_rounds);
      BDIO_CHECK(result.ok());
      const SsspResult& sssp = result.value();
      prepare_stats = sssp.prepare_stats;
      for (const GraphRoundStats& rs : sssp.round_stats) {
        round_stats.push_back(rs.stats);
        plan.model_rounds.push_back(
            GraphRoundModel{rs.round, rs.frontier, rs.updated});
      }
      plan.model_reached = sssp.reached;
      break;
    }
    case GraphWorkload::kConnectedComponents: {
      auto result = RunConnectedComponents(graph, config, options.max_rounds);
      BDIO_CHECK(result.ok());
      const CcResult& cc = result.value();
      prepare_stats = cc.prepare_stats;
      for (const GraphRoundStats& rs : cc.round_stats) {
        round_stats.push_back(rs.stats);
        plan.model_rounds.push_back(
            GraphRoundModel{rs.round, rs.frontier, rs.updated});
      }
      plan.model_components = cc.components;
      break;
    }
    case GraphWorkload::kTriangleCount: {
      auto result = RunTriangleCount(graph, config);
      BDIO_CHECK(result.ok());
      const TriResult& tri = result.value();
      prepare_stats = tri.prepare_stats;
      round_stats.push_back(tri.count_stats);
      plan.model_triangles = tri.triangles;
      break;
    }
  }
  BDIO_CHECK(!round_stats.empty());

  // Static nodes: prepare (symmetrize) + the first compute round.
  dag::DagNode prepare;
  prepare.spec = MakeSpecFromRatios(plan.short_name + "-prepare",
                                    RatiosFrom(prepare_stats), workload,
                                    options);
  prepare.spec.input_path = plan.dataset_path;
  prepare.spec.output_path = out_root + "/prepared";
  prepare.pool = options.pool;
  prepare.weight = options.weight;
  plan.dag.nodes.push_back(std::move(prepare));

  std::vector<mapreduce::SimJobSpec> round_specs;
  round_specs.reserve(round_stats.size());
  for (size_t r = 0; r < round_stats.size(); ++r) {
    const std::string name =
        (workload == GraphWorkload::kTriangleCount)
            ? plan.short_name + "-count"
            : plan.short_name + "-round" + std::to_string(r + 1);
    round_specs.push_back(MakeSpecFromRatios(name, RatiosFrom(round_stats[r]),
                                             workload, options));
  }

  dag::DagNode first_round;
  first_round.spec = round_specs[0];
  first_round.spec.input_path = out_root + "/prepared";
  first_round.spec.output_path = (workload == GraphWorkload::kTriangleCount)
                                     ? out_root + "/triangles"
                                     : out_root + "/round1";
  first_round.deps.push_back(0);  // After prepare.
  first_round.pool = options.pool;
  first_round.weight = options.weight;
  plan.dag.nodes.push_back(std::move(first_round));

  if (round_specs.size() > 1) {
    auto controller = std::make_shared<ReplayRoundsController>(
        std::move(round_specs), out_root, /*emitted=*/1);
    controller->set_pool(options.pool, options.weight);
    plan.dag.controller = std::move(controller);
  }
  return plan;
}

}  // namespace bdio::workloads
