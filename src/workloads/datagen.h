#ifndef BDIO_WORKLOADS_DATAGEN_H_
#define BDIO_WORKLOADS_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "mrfunc/api.h"

namespace bdio::workloads {

/// BigDataBench-style generators: small-scale real datasets whose *shape*
/// (record sizes, skew, compressibility) matches the paper's inputs. They
/// feed the functional jobs and calibrate the simulator's volume model.

/// TeraSort records: 10-byte binary-ish key + 90-byte text payload (the
/// TeraGen format). Payload is skewed word text so compression behaves like
/// text data.
std::vector<mrfunc::KeyValue> GenTeraSortRecords(Rng* rng, size_t count);

/// Hive fact-table rows for the Aggregation query: key = order id, value =
/// "uid|category|price|quantity|date" with Zipf-distributed uid/category.
std::vector<mrfunc::KeyValue> GenOrderRows(Rng* rng, size_t count,
                                           uint32_t num_categories = 64);

/// K-means points: `dims`-dimensional points drawn from a mixture of
/// `centers` Gaussians. value = comma-separated floats; key = point id.
std::vector<mrfunc::KeyValue> GenPoints(Rng* rng, size_t count,
                                        uint32_t centers = 8,
                                        uint32_t dims = 16,
                                        double spread = 0.05);

/// Web-graph adjacency lists via preferential attachment (power-law
/// in-degree like the Google web graph): key = node id, value =
/// space-separated successor ids.
std::vector<mrfunc::KeyValue> GenWebGraph(Rng* rng, size_t nodes,
                                          double avg_out_degree = 8.0);

/// Total serialized bytes of a record set (spill wire format).
uint64_t DatasetBytes(const std::vector<mrfunc::KeyValue>& records);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_DATAGEN_H_
