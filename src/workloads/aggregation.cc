#include "workloads/aggregation.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace bdio::workloads {

namespace {
/// Parses "uid|catX|price|quantity|date"; returns false on malformed rows
/// (which real Hive skips rather than failing the query).
bool ParseRow(const std::string& row, std::string* category,
              double* revenue) {
  const size_t p1 = row.find('|');
  if (p1 == std::string::npos) return false;
  const size_t p2 = row.find('|', p1 + 1);
  if (p2 == std::string::npos) return false;
  const size_t p3 = row.find('|', p2 + 1);
  if (p3 == std::string::npos) return false;
  *category = row.substr(p1 + 1, p2 - p1 - 1);
  const double price = std::atof(row.c_str() + p2 + 1);
  const double quantity = std::atof(row.c_str() + p3 + 1);
  *revenue = price * quantity;
  return true;
}
}  // namespace

void AggregationMapper::Map(const mrfunc::KeyValue& record,
                            mrfunc::Emitter* out) {
  std::string category;
  double revenue = 0;
  if (!ParseRow(record.value, &category, &revenue)) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", revenue);
  out->Emit(category, buf);
}

void SumReducer::Reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        mrfunc::Emitter* out) {
  double total = 0;
  for (const std::string& v : values) total += std::atof(v.c_str());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", total);
  out->Emit(key, buf);
}

Result<AggregationResult> RunAggregation(
    const std::vector<mrfunc::KeyValue>& input,
    const mrfunc::JobConfig& config) {
  AggregationMapper mapper;
  SumReducer reducer;
  mrfunc::LocalJobRunner runner;
  AggregationResult result;
  BDIO_ASSIGN_OR_RETURN(result.stats,
                        runner.Run(input, &mapper, &reducer, config,
                                   &result.output));
  return result;
}

std::map<std::string, double> ReferenceAggregate(
    const std::vector<mrfunc::KeyValue>& input) {
  std::map<std::string, double> totals;
  for (const auto& kv : input) {
    std::string category;
    double revenue = 0;
    if (ParseRow(kv.value, &category, &revenue)) {
      totals[category] += revenue;
    }
  }
  return totals;
}

}  // namespace bdio::workloads
