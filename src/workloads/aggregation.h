#ifndef BDIO_WORKLOADS_AGGREGATION_H_
#define BDIO_WORKLOADS_AGGREGATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mrfunc/api.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {

/// The Hive OLAP query the paper runs: SELECT category, SUM(price*quantity)
/// FROM orders GROUP BY category. The map parses each row and emits the
/// group key with the partial revenue; sums are combinable.
class AggregationMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override;
};

/// Sums double-valued partials per key.
class SumReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mrfunc::Emitter* out) override;
};

/// Result of the functional aggregation run.
struct AggregationResult {
  std::vector<mrfunc::KeyValue> output;
  mrfunc::JobStats stats;
};

/// Runs the aggregation job (with combiner if config.use_combiner).
Result<AggregationResult> RunAggregation(
    const std::vector<mrfunc::KeyValue>& input,
    const mrfunc::JobConfig& config);

/// Reference implementation: straight hash aggregation, for verifying the
/// MapReduce answer.
std::map<std::string, double> ReferenceAggregate(
    const std::vector<mrfunc::KeyValue>& input);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_AGGREGATION_H_
