#include "workloads/pagerank.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace bdio::workloads {

namespace {
/// Splits "rank|adjacency" -> (rank, adjacency string view part).
bool SplitRankAdj(const std::string& value, double* rank,
                  std::string* adj) {
  const size_t bar = value.find('|');
  if (bar == std::string::npos) return false;
  *rank = std::atof(value.c_str());
  *adj = value.substr(bar + 1);
  return true;
}

std::vector<std::string> SplitSpace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}
}  // namespace

void PageRankMapper::Map(const mrfunc::KeyValue& record,
                         mrfunc::Emitter* out) {
  double rank = 0;
  std::string adj;
  if (!SplitRankAdj(record.value, &rank, &adj)) return;
  out->Emit(record.key, "A|" + adj);
  const std::vector<std::string> succ = SplitSpace(adj);
  if (succ.empty()) return;  // dangling node: mass handled by damping
  const double contrib = rank / static_cast<double>(succ.size());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "C|%.10f", contrib);
  for (const std::string& s : succ) out->Emit(s, buf);
}

void PageRankReducer::Reduce(const std::string& key,
                             const std::vector<std::string>& values,
                             mrfunc::Emitter* out) {
  double sum = 0;
  std::string adj;
  for (const std::string& v : values) {
    if (v.size() >= 2 && v[0] == 'A' && v[1] == '|') {
      adj = v.substr(2);
    } else if (v.size() >= 2 && v[0] == 'C' && v[1] == '|') {
      sum += std::atof(v.c_str() + 2);
    }
  }
  const double rank =
      (1.0 - damping_) / static_cast<double>(num_nodes_) + damping_ * sum;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10f", rank);
  out->Emit(key, std::string(buf) + "|" + adj);
}

Result<PageRankResult> RunPageRank(
    const std::vector<mrfunc::KeyValue>& graph, uint32_t iterations,
    const mrfunc::JobConfig& config, double damping) {
  if (graph.empty()) return Status::InvalidArgument("empty graph");
  const uint64_t n = graph.size();

  // Attach initial ranks: (node, "1/N|adjacency").
  std::vector<mrfunc::KeyValue> state;
  state.reserve(n);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10f", 1.0 / static_cast<double>(n));
  for (const auto& kv : graph) {
    state.push_back(
        mrfunc::KeyValue{kv.key, std::string(buf) + "|" + kv.value});
  }

  PageRankResult result;
  mrfunc::LocalJobRunner runner;
  PageRankMapper mapper;
  PageRankReducer reducer(damping, n);
  for (uint32_t it = 0; it < iterations; ++it) {
    std::vector<mrfunc::KeyValue> next;
    BDIO_ASSIGN_OR_RETURN(mrfunc::JobStats stats,
                          runner.Run(state, &mapper, &reducer, config,
                                     &next));
    result.iteration_stats.push_back(stats);
    ++result.iterations;
    state = std::move(next);
  }
  for (const auto& kv : state) {
    result.ranks[kv.key] = std::atof(kv.value.c_str());
  }
  return result;
}

}  // namespace bdio::workloads
