#include "workloads/graph.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace bdio::workloads {

namespace {

std::vector<std::string> SplitSpace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Splits "<head>|<flag>|<adj>" into its three parts. Returns false on
/// malformed records (they are dropped, matching Hadoop's bad-record
/// tolerance).
bool SplitState(const std::string& value, std::string* head, bool* frontier,
                std::string* adj) {
  const size_t bar1 = value.find('|');
  if (bar1 == std::string::npos) return false;
  const size_t bar2 = value.find('|', bar1 + 1);
  if (bar2 == std::string::npos) return false;
  *head = value.substr(0, bar1);
  *frontier = value[bar1 + 1] == '1';
  *adj = value.substr(bar2 + 1);
  return true;
}

std::string JoinState(const std::string& head, bool frontier,
                      const std::string& adj) {
  return head + (frontier ? "|1|" : "|0|") + adj;
}

uint64_t ParseDist(const std::string& s) {
  if (s == "INF") return kInfDist;
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::string FormatDist(uint64_t dist) {
  if (dist == kInfDist) return "INF";
  return std::to_string(dist);
}

/// Key for an undirected edge/wedge pair, endpoints in numeric order.
std::string PairKey(const std::string& a, const std::string& b) {
  if (NumericLess(a, b)) return a + "," + b;
  return b + "," + a;
}

}  // namespace

bool NumericLess(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

// --- Symmetrize ----------------------------------------------------------

void SymmetrizeMapper::Map(const mrfunc::KeyValue& record,
                           mrfunc::Emitter* out) {
  out->Emit(record.key, "");  // Self marker: isolated nodes survive.
  for (const std::string& succ : SplitSpace(record.value)) {
    if (succ == record.key) continue;  // Self loops add nothing undirected.
    out->Emit(record.key, succ);
    out->Emit(succ, record.key);
  }
}

void SymmetrizeReducer::Reduce(const std::string& key,
                               const std::vector<std::string>& values,
                               mrfunc::Emitter* out) {
  std::vector<std::string> neighbors;
  for (const std::string& v : values) {
    if (!v.empty()) neighbors.push_back(v);
  }
  std::sort(neighbors.begin(), neighbors.end(), NumericLess);
  neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                  neighbors.end());
  std::string adj;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i) adj += ' ';
    adj += neighbors[i];
  }
  out->Emit(key, adj);
}

// --- SSSP ----------------------------------------------------------------

void SsspMapper::Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) {
  std::string dist_s;
  std::string adj;
  bool frontier = false;
  if (!SplitState(record.value, &dist_s, &frontier, &adj)) return;
  out->Emit(record.key, "S|" + dist_s + "|" + adj);
  if (!frontier) return;
  const uint64_t dist = ParseDist(dist_s);
  if (dist == kInfDist) return;  // Unreached nodes never expand.
  const std::string candidate = "D|" + FormatDist(dist + 1);
  for (const std::string& succ : SplitSpace(adj)) out->Emit(succ, candidate);
}

void SsspReducer::Reduce(const std::string& key,
                         const std::vector<std::string>& values,
                         mrfunc::Emitter* out) {
  uint64_t dist = kInfDist;
  uint64_t best_candidate = kInfDist;
  std::string adj;
  bool saw_structure = false;
  for (const std::string& v : values) {
    if (v.size() >= 2 && v[0] == 'S' && v[1] == '|') {
      const size_t bar = v.find('|', 2);
      if (bar == std::string::npos) continue;
      dist = ParseDist(v.substr(2, bar - 2));
      adj = v.substr(bar + 1);
      saw_structure = true;
    } else if (v.size() >= 2 && v[0] == 'D' && v[1] == '|') {
      best_candidate = std::min(best_candidate, ParseDist(v.substr(2)));
    }
  }
  if (!saw_structure) return;  // Candidate for a node outside the graph.
  const bool improved = best_candidate < dist;
  if (improved) dist = best_candidate;
  out->Emit(key, JoinState(FormatDist(dist), improved, adj));
}

// --- Connected components ------------------------------------------------

void CcMapper::Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) {
  std::string label;
  std::string adj;
  bool frontier = false;
  if (!SplitState(record.value, &label, &frontier, &adj)) return;
  out->Emit(record.key, "S|" + label + "|" + adj);
  if (!frontier) return;
  const std::string candidate = "D|" + label;
  for (const std::string& succ : SplitSpace(adj)) out->Emit(succ, candidate);
}

void CcReducer::Reduce(const std::string& key,
                       const std::vector<std::string>& values,
                       mrfunc::Emitter* out) {
  std::string label;
  std::string best_candidate;
  std::string adj;
  bool saw_structure = false;
  for (const std::string& v : values) {
    if (v.size() >= 2 && v[0] == 'S' && v[1] == '|') {
      const size_t bar = v.find('|', 2);
      if (bar == std::string::npos) continue;
      label = v.substr(2, bar - 2);
      adj = v.substr(bar + 1);
      saw_structure = true;
    } else if (v.size() >= 2 && v[0] == 'D' && v[1] == '|') {
      const std::string candidate = v.substr(2);
      if (best_candidate.empty() || NumericLess(candidate, best_candidate)) {
        best_candidate = candidate;
      }
    }
  }
  if (!saw_structure) return;
  const bool improved =
      !best_candidate.empty() && NumericLess(best_candidate, label);
  if (improved) label = best_candidate;
  out->Emit(key, JoinState(label, improved, adj));
}

// --- Triangle counting ---------------------------------------------------

void TriangleMapper::Map(const mrfunc::KeyValue& record,
                         mrfunc::Emitter* out) {
  const std::vector<std::string> neighbors = SplitSpace(record.value);
  for (const std::string& n : neighbors) {
    // Each undirected edge appears in both endpoints' lists; emit the
    // marker from the smaller endpoint only so every edge key gets exactly
    // one "E".
    if (NumericLess(record.key, n)) out->Emit(PairKey(record.key, n), "E");
  }
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      out->Emit(PairKey(neighbors[i], neighbors[j]), "W");
    }
  }
}

void TriangleReducer::Reduce(const std::string& key,
                             const std::vector<std::string>& values,
                             mrfunc::Emitter* out) {
  uint64_t wedges = 0;
  bool has_edge = false;
  for (const std::string& v : values) {
    if (v == "W") {
      ++wedges;
    } else if (v == "E") {
      has_edge = true;
    }
  }
  if (has_edge && wedges > 0) out->Emit(key, std::to_string(wedges));
}

// --- State builders ------------------------------------------------------

std::vector<mrfunc::KeyValue> MakeSsspState(
    const std::vector<mrfunc::KeyValue>& adjacency,
    const std::string& source) {
  std::vector<mrfunc::KeyValue> state;
  state.reserve(adjacency.size());
  for (const auto& kv : adjacency) {
    const bool is_source = kv.key == source;
    state.push_back(mrfunc::KeyValue{
        kv.key, JoinState(is_source ? "0" : "INF", is_source, kv.value)});
  }
  return state;
}

std::vector<mrfunc::KeyValue> MakeCcState(
    const std::vector<mrfunc::KeyValue>& adjacency) {
  std::vector<mrfunc::KeyValue> state;
  state.reserve(adjacency.size());
  for (const auto& kv : adjacency) {
    state.push_back(mrfunc::KeyValue{kv.key, JoinState(kv.key, true,
                                                       kv.value)});
  }
  return state;
}

// --- Drivers -------------------------------------------------------------

namespace {

/// Counts frontier flags in a state record set.
uint64_t CountFrontier(const std::vector<mrfunc::KeyValue>& state) {
  uint64_t frontier = 0;
  for (const auto& kv : state) {
    std::string head;
    std::string adj;
    bool flag = false;
    if (SplitState(kv.value, &head, &flag, &adj) && flag) ++frontier;
  }
  return frontier;
}

Result<std::vector<mrfunc::KeyValue>> Symmetrize(
    const std::vector<mrfunc::KeyValue>& graph,
    const mrfunc::JobConfig& config, mrfunc::JobStats* stats) {
  mrfunc::LocalJobRunner runner;
  SymmetrizeMapper mapper;
  SymmetrizeReducer reducer;
  std::vector<mrfunc::KeyValue> undirected;
  BDIO_ASSIGN_OR_RETURN(
      *stats, runner.Run(graph, &mapper, &reducer, config, &undirected));
  return undirected;
}

}  // namespace

Result<SsspResult> RunSssp(const std::vector<mrfunc::KeyValue>& graph,
                           const std::string& source,
                           const mrfunc::JobConfig& config,
                           uint32_t max_rounds) {
  if (graph.empty()) return Status::InvalidArgument("empty graph");
  SsspResult result;
  BDIO_ASSIGN_OR_RETURN(
      std::vector<mrfunc::KeyValue> undirected,
      Symmetrize(graph, config, &result.prepare_stats));
  std::vector<mrfunc::KeyValue> state = MakeSsspState(undirected, source);

  mrfunc::LocalJobRunner runner;
  SsspMapper mapper;
  SsspReducer reducer;
  for (uint32_t round = 1; round <= max_rounds; ++round) {
    std::vector<mrfunc::KeyValue> next;
    GraphRoundStats rs;
    rs.round = round;
    BDIO_ASSIGN_OR_RETURN(
        rs.stats, runner.Run(state, &mapper, &reducer, config, &next));
    state = std::move(next);
    rs.frontier = CountFrontier(state);
    rs.updated = rs.frontier;  // SSSP flags exactly the improved nodes.
    result.round_stats.push_back(rs);
    ++result.rounds;
    if (rs.frontier == 0) break;
  }
  for (const auto& kv : state) {
    std::string head;
    std::string adj;
    bool flag = false;
    if (!SplitState(kv.value, &head, &flag, &adj)) continue;
    const uint64_t dist = ParseDist(head);
    result.distance[kv.key] = dist;
    if (dist != kInfDist) ++result.reached;
  }
  return result;
}

Result<CcResult> RunConnectedComponents(
    const std::vector<mrfunc::KeyValue>& graph,
    const mrfunc::JobConfig& config, uint32_t max_rounds) {
  if (graph.empty()) return Status::InvalidArgument("empty graph");
  CcResult result;
  BDIO_ASSIGN_OR_RETURN(
      std::vector<mrfunc::KeyValue> undirected,
      Symmetrize(graph, config, &result.prepare_stats));
  std::vector<mrfunc::KeyValue> state = MakeCcState(undirected);

  mrfunc::LocalJobRunner runner;
  CcMapper mapper;
  CcReducer reducer;
  for (uint32_t round = 1; round <= max_rounds; ++round) {
    std::vector<mrfunc::KeyValue> next;
    GraphRoundStats rs;
    rs.round = round;
    BDIO_ASSIGN_OR_RETURN(
        rs.stats, runner.Run(state, &mapper, &reducer, config, &next));
    state = std::move(next);
    rs.frontier = CountFrontier(state);
    rs.updated = rs.frontier;  // Flags mark exactly the relabelled nodes.
    result.round_stats.push_back(rs);
    ++result.rounds;
    if (rs.frontier == 0) break;
  }
  std::map<std::string, uint64_t> component_sizes;
  for (const auto& kv : state) {
    std::string label;
    std::string adj;
    bool flag = false;
    if (!SplitState(kv.value, &label, &flag, &adj)) continue;
    result.label[kv.key] = label;
    ++component_sizes[label];
  }
  result.components = component_sizes.size();
  return result;
}

Result<TriResult> RunTriangleCount(const std::vector<mrfunc::KeyValue>& graph,
                                   const mrfunc::JobConfig& config) {
  if (graph.empty()) return Status::InvalidArgument("empty graph");
  TriResult result;
  BDIO_ASSIGN_OR_RETURN(
      std::vector<mrfunc::KeyValue> undirected,
      Symmetrize(graph, config, &result.prepare_stats));

  mrfunc::LocalJobRunner runner;
  TriangleMapper mapper;
  TriangleReducer reducer;
  // No combiner: the closure reduce is not algebraic over raw W/E markers.
  mrfunc::JobConfig count_config = config;
  count_config.use_combiner = false;
  std::vector<mrfunc::KeyValue> closures;
  BDIO_ASSIGN_OR_RETURN(result.count_stats,
                        runner.Run(undirected, &mapper, &reducer,
                                   count_config, &closures));
  for (const auto& kv : closures) {
    result.closed_wedges += std::strtoull(kv.value.c_str(), nullptr, 10);
  }
  BDIO_CHECK(result.closed_wedges % 3 == 0);
  result.triangles = result.closed_wedges / 3;
  return result;
}

}  // namespace bdio::workloads
