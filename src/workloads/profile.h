#ifndef BDIO_WORKLOADS_PROFILE_H_
#define BDIO_WORKLOADS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "mapreduce/job.h"

namespace bdio::workloads {

/// The four paper workloads (Table 3).
enum class WorkloadKind { kTeraSort, kAggregation, kKMeans, kPageRank };

/// Paper abbreviations: TS, AGG, KM, PR.
const char* WorkloadShortName(WorkloadKind kind);
/// All four, in the paper's presentation order (AGG, TS, KM, PR).
std::vector<WorkloadKind> AllWorkloads();

/// Volume ratios measured by running the real (mrfunc) workload code over
/// generated sample data with the real codec.
struct Calibration {
  double map_output_ratio = 1.0;  ///< map output bytes / input bytes.
  double combine_ratio = 1.0;     ///< post-combiner fraction per spill.
  double output_ratio = 1.0;      ///< job output bytes / input bytes.
  double compress_ratio = 0.5;    ///< codec bytes out / bytes in.
};

/// Runs the functional workload on a small generated dataset and measures
/// the volume ratios. Deterministic for a given seed.
Calibration CalibrateWorkload(WorkloadKind kind, uint64_t seed = 42);

/// Everything needed to plan a workload's simulated execution.
struct PlanOptions {
  bool compress_intermediate = false;
  /// Scale factor applied to the paper-scale dataset sizes (and, by the
  /// experiment runner, to node memory). 1.0 reproduces the full 1 TB runs.
  double scale = 1.0 / 64;
  uint32_t kmeans_iterations = 3;
  uint32_t pagerank_iterations = 3;
  /// If set, use these measured ratios instead of the built-in defaults.
  const Calibration* calibration = nullptr;
};

/// One simulated job plus where its input comes from.
struct PlannedJob {
  mapreduce::SimJobSpec spec;
};

/// A workload's full execution plan: dataset to preload + chained jobs.
struct WorkloadPlan {
  WorkloadKind kind;
  std::string short_name;
  std::string dataset_path;   ///< HDFS path the runner preloads.
  uint64_t dataset_bytes = 0; ///< Scaled input size.
  std::vector<PlannedJob> jobs;
};

/// Paper-scale input size (Table 3) before scaling.
uint64_t PaperInputBytes(WorkloadKind kind);

/// Builds the chained-job plan for a workload under the given factors.
WorkloadPlan BuildPlan(WorkloadKind kind, const PlanOptions& options);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_PROFILE_H_
