#ifndef BDIO_WORKLOADS_PROFILE_H_
#define BDIO_WORKLOADS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "dag/job_dag.h"
#include "mapreduce/job.h"

namespace bdio::workloads {

/// The four paper workloads (Table 3).
enum class WorkloadKind { kTeraSort, kAggregation, kKMeans, kPageRank };

/// Paper abbreviations: TS, AGG, KM, PR.
const char* WorkloadShortName(WorkloadKind kind);
/// All four, in the paper's presentation order (AGG, TS, KM, PR).
std::vector<WorkloadKind> AllWorkloads();

/// Volume ratios measured by running the real (mrfunc) workload code over
/// generated sample data with the real codec.
struct Calibration {
  double map_output_ratio = 1.0;  ///< map output bytes / input bytes.
  double combine_ratio = 1.0;     ///< post-combiner fraction per spill.
  double output_ratio = 1.0;      ///< job output bytes / input bytes.
  double compress_ratio = 0.5;    ///< codec bytes out / bytes in.
};

/// Runs the functional workload on a small generated dataset and measures
/// the volume ratios. Deterministic for a given seed.
Calibration CalibrateWorkload(WorkloadKind kind, uint64_t seed = 42);

/// Everything needed to plan a workload's simulated execution.
struct PlanOptions {
  bool compress_intermediate = false;
  /// Scale factor applied to the paper-scale dataset sizes (and, by the
  /// experiment runner, to node memory). 1.0 reproduces the full 1 TB runs.
  double scale = 1.0 / 64;
  uint32_t kmeans_iterations = 3;
  uint32_t pagerank_iterations = 3;
  /// If > 0, PageRank iterates until the model run's max per-node rank
  /// delta drops to `pagerank_epsilon` (data-driven convergence through the
  /// dag controller) instead of running `pagerank_iterations` fixed rounds.
  double pagerank_epsilon = 0;
  /// Model-graph size the epsilon predicate executes PageRank at.
  uint32_t pagerank_model_nodes = 2048;
  /// Seed for the model run backing the convergence predicate.
  uint64_t seed = 42;
  /// If set, use these measured ratios instead of the built-in defaults.
  const Calibration* calibration = nullptr;
};

/// One simulated job plus where its input comes from.
struct PlannedJob {
  mapreduce::SimJobSpec spec;
};

/// A workload's full execution plan: dataset to preload + the initial jobs
/// (executed as a linear dependency chain through the JobDag driver) plus,
/// for iterative workloads, a controller that appends further rounds.
struct WorkloadPlan {
  WorkloadKind kind;
  std::string short_name;
  std::string dataset_path;   ///< HDFS path the runner preloads.
  uint64_t dataset_bytes = 0; ///< Scaled input size.
  std::vector<PlannedJob> jobs;
  /// Non-null for iterative workloads (PageRank): emits the next round's
  /// jobs after each round completes, until the convergence predicate says
  /// stop. jobs[] then holds only the first round.
  std::shared_ptr<dag::IterationController> iteration;
  /// Delete a round's HDFS output once the next round consumed it.
  bool expire_intermediates = false;
};

/// Paper-scale input size (Table 3) before scaling.
uint64_t PaperInputBytes(WorkloadKind kind);

/// Builds the chained-job plan for a workload under the given factors.
WorkloadPlan BuildPlan(WorkloadKind kind, const PlanOptions& options);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_PROFILE_H_
