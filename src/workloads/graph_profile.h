#ifndef BDIO_WORKLOADS_GRAPH_PROFILE_H_
#define BDIO_WORKLOADS_GRAPH_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dag/job_dag.h"

namespace bdio::workloads {

/// The iterative graph family simulated through the JobDag driver (beyond
/// the paper's four one-pass workloads; ROADMAP item 2). Each plan is built
/// by *executing* the functional algorithms (graph.h) on a model-scale web
/// graph, then replaying the measured per-round volume ratios and frontier
/// decay as a dag of simulated jobs.
enum class GraphWorkload { kSssp, kConnectedComponents, kTriangleCount };

/// Short names: SSSP, CC, TRI.
const char* GraphWorkloadShortName(GraphWorkload workload);
/// All three, in presentation order (SSSP, CC, TRI).
std::vector<GraphWorkload> AllGraphWorkloads();

/// Paper-scale graph dataset size before scaling (the PageRank web-graph
/// size from Table 3 — the same adjacency data feeds all graph workloads).
uint64_t PaperGraphInputBytes();

struct GraphPlanOptions {
  /// Scale factor applied to the paper-scale dataset (see PlanOptions).
  double scale = 1.0 / 64;
  bool compress_intermediate = false;
  /// Cap on simulated rounds (also the functional model's round cap).
  uint32_t max_rounds = 32;
  /// Model-graph size the functional run executes at. Frontier decay and
  /// per-round ratios come from this run; bigger = smoother decay curves,
  /// slower planning.
  uint32_t model_nodes = 2048;
  uint64_t seed = 42;
  /// Scheduler pool/weight every node of the dag is submitted under.
  std::string pool = "default";
  double weight = 1.0;
};

/// One model round, kept for reporting next to the simulated rounds.
struct GraphRoundModel {
  uint32_t round = 0;     ///< 1-based.
  uint64_t frontier = 0;  ///< Frontier size after the round.
  uint64_t updated = 0;   ///< Nodes whose state changed in the round.
};

/// A graph workload planned as a JobDag: dataset to preload + the dag spec
/// (prepare node, first round, and a controller replaying the remaining
/// model rounds), plus the model-run ground truth for shape checks.
struct GraphDagPlan {
  GraphWorkload workload = GraphWorkload::kSssp;
  std::string short_name;
  std::string dataset_path;    ///< HDFS path the runner preloads.
  uint64_t dataset_bytes = 0;  ///< Scaled input size.
  dag::DagSpec dag;
  /// Per-round frontier/update sizes of the functional model run
  /// (empty for triangle counting, which is not iterative).
  std::vector<GraphRoundModel> model_rounds;
  uint64_t model_reached = 0;     ///< SSSP: nodes at finite distance.
  uint64_t model_components = 0;  ///< CC: final component count.
  uint64_t model_triangles = 0;   ///< TRI: exact triangle count.
};

/// Runs the functional workload at model scale and builds the simulated
/// dag plan. Deterministic for fixed options. The convergence predicate of
/// the returned controller re-checks the *simulated* counters each round
/// (a round that wrote no state stops the iteration) on top of the model's
/// frontier-drain schedule.
GraphDagPlan BuildGraphDag(GraphWorkload workload,
                           const GraphPlanOptions& options);

}  // namespace bdio::workloads

#endif  // BDIO_WORKLOADS_GRAPH_PROFILE_H_
