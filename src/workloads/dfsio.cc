#include "workloads/dfsio.h"

#include <memory>

#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::workloads {

namespace {

struct DfsioRun {
  DfsioSpec spec;
  cluster::Cluster* cluster = nullptr;
  hdfs::Hdfs* dfs = nullptr;
  std::function<void(Result<DfsioResult>)> done;
  DfsioResult result;
  SimTime phase_start;
};

std::string FileName(const DfsioSpec& spec, uint32_t i) {
  return spec.path_prefix + "/io_data/test_io_" + std::to_string(i);
}

void StartReadPhase(std::shared_ptr<DfsioRun> run) {
  sim::Simulator* sim = run->cluster->sim();
  run->phase_start = sim->Now();
  auto all_read = sim::Latch::Create(run->spec.num_files, [run] {
    sim::Simulator* s = run->cluster->sim();
    run->result.read_seconds =
        ToSeconds(s->Now() - run->phase_start);
    const double total_mb =
        static_cast<double>(run->spec.num_files) *
        static_cast<double>(run->spec.file_bytes) / 1e6;
    run->result.read_mb_s = total_mb / run->result.read_seconds;
    run->done(run->result);
  });
  const uint32_t workers = run->cluster->num_workers();
  for (uint32_t i = 0; i < run->spec.num_files; ++i) {
    uint32_t reader = i % workers;
    if (run->spec.remote_readers) reader = (reader + 1) % workers;
    run->dfs->ReadAll(FileName(run->spec, i), reader,
                      [all_read](Status s) {
                        BDIO_CHECK_OK(s);
                        all_read->Arrive();
                      });
  }
}

}  // namespace

void RunDfsio(cluster::Cluster* cluster, hdfs::Hdfs* dfs,
              const DfsioSpec& spec,
              std::function<void(Result<DfsioResult>)> done) {
  BDIO_CHECK(cluster != nullptr);
  BDIO_CHECK(dfs != nullptr);
  if (spec.num_files == 0 || spec.file_bytes == 0) {
    cluster->sim()->ScheduleAfter(SimDuration{}, [done = std::move(done)] {
      done(Status::InvalidArgument("num_files and file_bytes must be > 0"));
    });
    return;
  }
  auto run = std::make_shared<DfsioRun>();
  run->spec = spec;
  run->cluster = cluster;
  run->dfs = dfs;
  run->done = std::move(done);
  run->result.num_files = spec.num_files;
  run->result.bytes_per_file = spec.file_bytes;
  run->phase_start = cluster->sim()->Now();

  auto all_written = sim::Latch::Create(spec.num_files, [run] {
    sim::Simulator* sim = run->cluster->sim();
    // TestDFSIO's write time includes making the data durable: flush the
    // page caches before stopping the clock.
    auto flushed = sim::Latch::Create(run->cluster->num_workers(), [run] {
      sim::Simulator* s = run->cluster->sim();
      run->result.write_seconds = ToSeconds(s->Now() - run->phase_start);
      const double total_mb =
          static_cast<double>(run->spec.num_files) *
          static_cast<double>(run->spec.file_bytes) / 1e6;
      run->result.write_mb_s = total_mb / run->result.write_seconds;
      if (run->spec.run_read_phase) {
        // Cold reads: drop the caches first.
        for (uint32_t n = 0; n < run->cluster->num_workers(); ++n) {
          run->cluster->node(n)->cache()->DropClean();
        }
        StartReadPhase(run);
      } else {
        run->done(run->result);
      }
    });
    for (uint32_t n = 0; n < run->cluster->num_workers(); ++n) {
      run->cluster->node(n)->cache()->SyncAll(flushed->Arm());
    }
    (void)sim;
  });

  const uint32_t workers = cluster->num_workers();
  for (uint32_t i = 0; i < spec.num_files; ++i) {
    dfs->WriteReplicated(FileName(spec, i), spec.file_bytes, i % workers,
                         spec.replication,
                         [all_written](Status s) {
                           BDIO_CHECK_OK(s);
                           all_written->Arrive();
                         });
  }
}

}  // namespace bdio::workloads
