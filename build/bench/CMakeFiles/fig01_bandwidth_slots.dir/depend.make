# Empty dependencies file for fig01_bandwidth_slots.
# This may be replaced when dependencies are built.
