file(REMOVE_RECURSE
  "CMakeFiles/fig01_bandwidth_slots.dir/fig01_bandwidth_slots.cc.o"
  "CMakeFiles/fig01_bandwidth_slots.dir/fig01_bandwidth_slots.cc.o.d"
  "fig01_bandwidth_slots"
  "fig01_bandwidth_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bandwidth_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
