# Empty compiler generated dependencies file for fig04_util_slots.
# This may be replaced when dependencies are built.
