file(REMOVE_RECURSE
  "CMakeFiles/fig04_util_slots.dir/fig04_util_slots.cc.o"
  "CMakeFiles/fig04_util_slots.dir/fig04_util_slots.cc.o.d"
  "fig04_util_slots"
  "fig04_util_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_util_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
