# Empty dependencies file for ablation_hadoop_tuning.
# This may be replaced when dependencies are built.
