file(REMOVE_RECURSE
  "CMakeFiles/ablation_hadoop_tuning.dir/ablation_hadoop_tuning.cc.o"
  "CMakeFiles/ablation_hadoop_tuning.dir/ablation_hadoop_tuning.cc.o.d"
  "ablation_hadoop_tuning"
  "ablation_hadoop_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hadoop_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
