file(REMOVE_RECURSE
  "CMakeFiles/fig03_bandwidth_compression.dir/fig03_bandwidth_compression.cc.o"
  "CMakeFiles/fig03_bandwidth_compression.dir/fig03_bandwidth_compression.cc.o.d"
  "fig03_bandwidth_compression"
  "fig03_bandwidth_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bandwidth_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
