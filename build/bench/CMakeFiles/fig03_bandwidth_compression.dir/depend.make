# Empty dependencies file for fig03_bandwidth_compression.
# This may be replaced when dependencies are built.
