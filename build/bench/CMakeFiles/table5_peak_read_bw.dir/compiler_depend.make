# Empty compiler generated dependencies file for table5_peak_read_bw.
# This may be replaced when dependencies are built.
