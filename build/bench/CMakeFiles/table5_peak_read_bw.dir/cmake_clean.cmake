file(REMOVE_RECURSE
  "CMakeFiles/table5_peak_read_bw.dir/table5_peak_read_bw.cc.o"
  "CMakeFiles/table5_peak_read_bw.dir/table5_peak_read_bw.cc.o.d"
  "table5_peak_read_bw"
  "table5_peak_read_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_peak_read_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
