# Empty dependencies file for extension_io_attribution.
# This may be replaced when dependencies are built.
