file(REMOVE_RECURSE
  "CMakeFiles/extension_io_attribution.dir/extension_io_attribution.cc.o"
  "CMakeFiles/extension_io_attribution.dir/extension_io_attribution.cc.o.d"
  "extension_io_attribution"
  "extension_io_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_io_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
