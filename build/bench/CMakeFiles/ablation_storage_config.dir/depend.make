# Empty dependencies file for ablation_storage_config.
# This may be replaced when dependencies are built.
