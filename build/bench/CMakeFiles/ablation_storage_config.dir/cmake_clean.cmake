file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_config.dir/ablation_storage_config.cc.o"
  "CMakeFiles/ablation_storage_config.dir/ablation_storage_config.cc.o.d"
  "ablation_storage_config"
  "ablation_storage_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
