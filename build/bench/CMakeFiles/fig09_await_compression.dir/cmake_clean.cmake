file(REMOVE_RECURSE
  "CMakeFiles/fig09_await_compression.dir/fig09_await_compression.cc.o"
  "CMakeFiles/fig09_await_compression.dir/fig09_await_compression.cc.o.d"
  "fig09_await_compression"
  "fig09_await_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_await_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
