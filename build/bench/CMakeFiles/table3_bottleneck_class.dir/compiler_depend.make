# Empty compiler generated dependencies file for table3_bottleneck_class.
# This may be replaced when dependencies are built.
