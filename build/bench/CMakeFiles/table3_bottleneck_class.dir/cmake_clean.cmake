file(REMOVE_RECURSE
  "CMakeFiles/table3_bottleneck_class.dir/table3_bottleneck_class.cc.o"
  "CMakeFiles/table3_bottleneck_class.dir/table3_bottleneck_class.cc.o.d"
  "table3_bottleneck_class"
  "table3_bottleneck_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bottleneck_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
