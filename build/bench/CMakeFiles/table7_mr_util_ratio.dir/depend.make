# Empty dependencies file for table7_mr_util_ratio.
# This may be replaced when dependencies are built.
