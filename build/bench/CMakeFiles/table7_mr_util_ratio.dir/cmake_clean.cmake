file(REMOVE_RECURSE
  "CMakeFiles/table7_mr_util_ratio.dir/table7_mr_util_ratio.cc.o"
  "CMakeFiles/table7_mr_util_ratio.dir/table7_mr_util_ratio.cc.o.d"
  "table7_mr_util_ratio"
  "table7_mr_util_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_mr_util_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
