file(REMOVE_RECURSE
  "CMakeFiles/fig08_await_memory.dir/fig08_await_memory.cc.o"
  "CMakeFiles/fig08_await_memory.dir/fig08_await_memory.cc.o.d"
  "fig08_await_memory"
  "fig08_await_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_await_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
