# Empty compiler generated dependencies file for fig08_await_memory.
# This may be replaced when dependencies are built.
