file(REMOVE_RECURSE
  "CMakeFiles/fig12_reqsz_compression.dir/fig12_reqsz_compression.cc.o"
  "CMakeFiles/fig12_reqsz_compression.dir/fig12_reqsz_compression.cc.o.d"
  "fig12_reqsz_compression"
  "fig12_reqsz_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reqsz_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
