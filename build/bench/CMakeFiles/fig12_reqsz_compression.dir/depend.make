# Empty dependencies file for fig12_reqsz_compression.
# This may be replaced when dependencies are built.
