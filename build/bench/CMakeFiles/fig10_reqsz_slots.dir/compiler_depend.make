# Empty compiler generated dependencies file for fig10_reqsz_slots.
# This may be replaced when dependencies are built.
