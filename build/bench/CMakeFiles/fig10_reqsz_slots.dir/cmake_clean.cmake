file(REMOVE_RECURSE
  "CMakeFiles/fig10_reqsz_slots.dir/fig10_reqsz_slots.cc.o"
  "CMakeFiles/fig10_reqsz_slots.dir/fig10_reqsz_slots.cc.o.d"
  "fig10_reqsz_slots"
  "fig10_reqsz_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reqsz_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
