file(REMOVE_RECURSE
  "CMakeFiles/fig11_reqsz_memory.dir/fig11_reqsz_memory.cc.o"
  "CMakeFiles/fig11_reqsz_memory.dir/fig11_reqsz_memory.cc.o.d"
  "fig11_reqsz_memory"
  "fig11_reqsz_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reqsz_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
