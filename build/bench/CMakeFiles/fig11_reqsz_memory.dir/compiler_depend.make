# Empty compiler generated dependencies file for fig11_reqsz_memory.
# This may be replaced when dependencies are built.
