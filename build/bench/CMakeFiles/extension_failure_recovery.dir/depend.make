# Empty dependencies file for extension_failure_recovery.
# This may be replaced when dependencies are built.
