
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extension_failure_recovery.cc" "bench/CMakeFiles/extension_failure_recovery.dir/extension_failure_recovery.cc.o" "gcc" "bench/CMakeFiles/extension_failure_recovery.dir/extension_failure_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bdio_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_mrfunc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_iostat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
