file(REMOVE_RECURSE
  "CMakeFiles/extension_failure_recovery.dir/extension_failure_recovery.cc.o"
  "CMakeFiles/extension_failure_recovery.dir/extension_failure_recovery.cc.o.d"
  "extension_failure_recovery"
  "extension_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
