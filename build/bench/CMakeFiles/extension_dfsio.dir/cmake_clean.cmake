file(REMOVE_RECURSE
  "CMakeFiles/extension_dfsio.dir/extension_dfsio.cc.o"
  "CMakeFiles/extension_dfsio.dir/extension_dfsio.cc.o.d"
  "extension_dfsio"
  "extension_dfsio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dfsio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
