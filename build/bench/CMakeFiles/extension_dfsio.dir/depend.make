# Empty dependencies file for extension_dfsio.
# This may be replaced when dependencies are built.
