# Empty compiler generated dependencies file for extension_dfsio.
# This may be replaced when dependencies are built.
