file(REMOVE_RECURSE
  "CMakeFiles/bdio_benchlib.dir/figure_common.cc.o"
  "CMakeFiles/bdio_benchlib.dir/figure_common.cc.o.d"
  "libbdio_benchlib.a"
  "libbdio_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
