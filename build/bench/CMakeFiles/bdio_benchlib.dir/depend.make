# Empty dependencies file for bdio_benchlib.
# This may be replaced when dependencies are built.
