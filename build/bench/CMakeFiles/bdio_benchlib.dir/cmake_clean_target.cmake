file(REMOVE_RECURSE
  "libbdio_benchlib.a"
)
