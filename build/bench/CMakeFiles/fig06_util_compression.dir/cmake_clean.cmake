file(REMOVE_RECURSE
  "CMakeFiles/fig06_util_compression.dir/fig06_util_compression.cc.o"
  "CMakeFiles/fig06_util_compression.dir/fig06_util_compression.cc.o.d"
  "fig06_util_compression"
  "fig06_util_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_util_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
