# Empty dependencies file for fig06_util_compression.
# This may be replaced when dependencies are built.
