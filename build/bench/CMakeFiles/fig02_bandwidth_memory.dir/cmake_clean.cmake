file(REMOVE_RECURSE
  "CMakeFiles/fig02_bandwidth_memory.dir/fig02_bandwidth_memory.cc.o"
  "CMakeFiles/fig02_bandwidth_memory.dir/fig02_bandwidth_memory.cc.o.d"
  "fig02_bandwidth_memory"
  "fig02_bandwidth_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bandwidth_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
