# Empty compiler generated dependencies file for fig02_bandwidth_memory.
# This may be replaced when dependencies are built.
