# Empty dependencies file for validation_scale_invariance.
# This may be replaced when dependencies are built.
