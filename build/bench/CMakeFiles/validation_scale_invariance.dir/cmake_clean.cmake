file(REMOVE_RECURSE
  "CMakeFiles/validation_scale_invariance.dir/validation_scale_invariance.cc.o"
  "CMakeFiles/validation_scale_invariance.dir/validation_scale_invariance.cc.o.d"
  "validation_scale_invariance"
  "validation_scale_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_scale_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
