file(REMOVE_RECURSE
  "CMakeFiles/fig07_await_slots.dir/fig07_await_slots.cc.o"
  "CMakeFiles/fig07_await_slots.dir/fig07_await_slots.cc.o.d"
  "fig07_await_slots"
  "fig07_await_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_await_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
