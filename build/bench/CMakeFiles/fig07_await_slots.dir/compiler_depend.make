# Empty compiler generated dependencies file for fig07_await_slots.
# This may be replaced when dependencies are built.
