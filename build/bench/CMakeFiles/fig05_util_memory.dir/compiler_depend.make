# Empty compiler generated dependencies file for fig05_util_memory.
# This may be replaced when dependencies are built.
