file(REMOVE_RECURSE
  "CMakeFiles/fig05_util_memory.dir/fig05_util_memory.cc.o"
  "CMakeFiles/fig05_util_memory.dir/fig05_util_memory.cc.o.d"
  "fig05_util_memory"
  "fig05_util_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_util_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
