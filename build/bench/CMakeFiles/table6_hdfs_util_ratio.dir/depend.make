# Empty dependencies file for table6_hdfs_util_ratio.
# This may be replaced when dependencies are built.
