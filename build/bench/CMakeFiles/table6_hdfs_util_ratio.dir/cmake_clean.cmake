file(REMOVE_RECURSE
  "CMakeFiles/table6_hdfs_util_ratio.dir/table6_hdfs_util_ratio.cc.o"
  "CMakeFiles/table6_hdfs_util_ratio.dir/table6_hdfs_util_ratio.cc.o.d"
  "table6_hdfs_util_ratio"
  "table6_hdfs_util_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_hdfs_util_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
