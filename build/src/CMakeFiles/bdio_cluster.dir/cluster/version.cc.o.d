src/CMakeFiles/bdio_cluster.dir/cluster/version.cc.o: \
 /root/repo/src/cluster/version.cc /usr/include/stdc-predef.h
