# Empty compiler generated dependencies file for bdio_cluster.
# This may be replaced when dependencies are built.
