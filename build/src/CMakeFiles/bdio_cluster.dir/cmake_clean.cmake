file(REMOVE_RECURSE
  "CMakeFiles/bdio_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/bdio_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/bdio_cluster.dir/cluster/cpu.cc.o"
  "CMakeFiles/bdio_cluster.dir/cluster/cpu.cc.o.d"
  "CMakeFiles/bdio_cluster.dir/cluster/node.cc.o"
  "CMakeFiles/bdio_cluster.dir/cluster/node.cc.o.d"
  "CMakeFiles/bdio_cluster.dir/cluster/version.cc.o"
  "CMakeFiles/bdio_cluster.dir/cluster/version.cc.o.d"
  "libbdio_cluster.a"
  "libbdio_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
