file(REMOVE_RECURSE
  "libbdio_cluster.a"
)
