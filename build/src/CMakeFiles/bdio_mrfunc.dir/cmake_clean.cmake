file(REMOVE_RECURSE
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/api.cc.o"
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/api.cc.o.d"
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/local_runner.cc.o"
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/local_runner.cc.o.d"
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/version.cc.o"
  "CMakeFiles/bdio_mrfunc.dir/mrfunc/version.cc.o.d"
  "libbdio_mrfunc.a"
  "libbdio_mrfunc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_mrfunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
