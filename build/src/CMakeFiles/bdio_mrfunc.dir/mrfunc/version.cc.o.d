src/CMakeFiles/bdio_mrfunc.dir/mrfunc/version.cc.o: \
 /root/repo/src/mrfunc/version.cc /usr/include/stdc-predef.h
