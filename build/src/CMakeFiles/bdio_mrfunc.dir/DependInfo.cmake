
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrfunc/api.cc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/api.cc.o" "gcc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/api.cc.o.d"
  "/root/repo/src/mrfunc/local_runner.cc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/local_runner.cc.o" "gcc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/local_runner.cc.o.d"
  "/root/repo/src/mrfunc/version.cc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/version.cc.o" "gcc" "src/CMakeFiles/bdio_mrfunc.dir/mrfunc/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bdio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
