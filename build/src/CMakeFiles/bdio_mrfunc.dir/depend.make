# Empty dependencies file for bdio_mrfunc.
# This may be replaced when dependencies are built.
