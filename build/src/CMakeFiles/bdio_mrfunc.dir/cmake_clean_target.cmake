file(REMOVE_RECURSE
  "libbdio_mrfunc.a"
)
