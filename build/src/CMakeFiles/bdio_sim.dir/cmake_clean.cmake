file(REMOVE_RECURSE
  "CMakeFiles/bdio_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/bdio_sim.dir/sim/simulator.cc.o.d"
  "libbdio_sim.a"
  "libbdio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
