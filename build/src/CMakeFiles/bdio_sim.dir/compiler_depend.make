# Empty compiler generated dependencies file for bdio_sim.
# This may be replaced when dependencies are built.
