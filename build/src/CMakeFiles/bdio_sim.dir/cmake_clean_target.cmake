file(REMOVE_RECURSE
  "libbdio_sim.a"
)
