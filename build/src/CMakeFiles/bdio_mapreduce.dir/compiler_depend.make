# Empty compiler generated dependencies file for bdio_mapreduce.
# This may be replaced when dependencies are built.
