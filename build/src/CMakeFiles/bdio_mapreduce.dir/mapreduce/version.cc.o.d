src/CMakeFiles/bdio_mapreduce.dir/mapreduce/version.cc.o: \
 /root/repo/src/mapreduce/version.cc /usr/include/stdc-predef.h
