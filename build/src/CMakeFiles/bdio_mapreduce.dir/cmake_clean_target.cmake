file(REMOVE_RECURSE
  "libbdio_mapreduce.a"
)
