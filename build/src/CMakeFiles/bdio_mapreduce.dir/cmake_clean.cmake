file(REMOVE_RECURSE
  "CMakeFiles/bdio_mapreduce.dir/mapreduce/engine.cc.o"
  "CMakeFiles/bdio_mapreduce.dir/mapreduce/engine.cc.o.d"
  "CMakeFiles/bdio_mapreduce.dir/mapreduce/version.cc.o"
  "CMakeFiles/bdio_mapreduce.dir/mapreduce/version.cc.o.d"
  "libbdio_mapreduce.a"
  "libbdio_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
