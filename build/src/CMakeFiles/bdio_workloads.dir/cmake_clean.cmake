file(REMOVE_RECURSE
  "CMakeFiles/bdio_workloads.dir/workloads/aggregation.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/aggregation.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/datagen.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/datagen.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/dfsio.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/dfsio.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/join.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/join.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/kmeans.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/kmeans.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/pagerank.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/pagerank.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/profile.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/profile.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/terasort.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/terasort.cc.o.d"
  "CMakeFiles/bdio_workloads.dir/workloads/version.cc.o"
  "CMakeFiles/bdio_workloads.dir/workloads/version.cc.o.d"
  "libbdio_workloads.a"
  "libbdio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
