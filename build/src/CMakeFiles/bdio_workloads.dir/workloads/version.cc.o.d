src/CMakeFiles/bdio_workloads.dir/workloads/version.cc.o: \
 /root/repo/src/workloads/version.cc /usr/include/stdc-predef.h
