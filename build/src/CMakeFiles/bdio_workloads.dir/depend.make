# Empty dependencies file for bdio_workloads.
# This may be replaced when dependencies are built.
