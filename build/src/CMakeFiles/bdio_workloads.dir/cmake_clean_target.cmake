file(REMOVE_RECURSE
  "libbdio_workloads.a"
)
