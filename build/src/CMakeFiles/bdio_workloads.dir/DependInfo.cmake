
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aggregation.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/aggregation.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/aggregation.cc.o.d"
  "/root/repo/src/workloads/datagen.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/datagen.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/datagen.cc.o.d"
  "/root/repo/src/workloads/dfsio.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/dfsio.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/dfsio.cc.o.d"
  "/root/repo/src/workloads/join.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/join.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/join.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/profile.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/profile.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/profile.cc.o.d"
  "/root/repo/src/workloads/terasort.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/terasort.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/terasort.cc.o.d"
  "/root/repo/src/workloads/version.cc" "src/CMakeFiles/bdio_workloads.dir/workloads/version.cc.o" "gcc" "src/CMakeFiles/bdio_workloads.dir/workloads/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bdio_mrfunc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
