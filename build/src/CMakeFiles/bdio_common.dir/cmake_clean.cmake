file(REMOVE_RECURSE
  "CMakeFiles/bdio_common.dir/common/histogram.cc.o"
  "CMakeFiles/bdio_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/logging.cc.o"
  "CMakeFiles/bdio_common.dir/common/logging.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/random.cc.o"
  "CMakeFiles/bdio_common.dir/common/random.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/stats.cc.o"
  "CMakeFiles/bdio_common.dir/common/stats.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/status.cc.o"
  "CMakeFiles/bdio_common.dir/common/status.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/table.cc.o"
  "CMakeFiles/bdio_common.dir/common/table.cc.o.d"
  "CMakeFiles/bdio_common.dir/common/time_series.cc.o"
  "CMakeFiles/bdio_common.dir/common/time_series.cc.o.d"
  "libbdio_common.a"
  "libbdio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
