
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/bdio_common.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/bdio_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/bdio_common.dir/common/random.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/bdio_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/bdio_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/bdio_common.dir/common/table.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/table.cc.o.d"
  "/root/repo/src/common/time_series.cc" "src/CMakeFiles/bdio_common.dir/common/time_series.cc.o" "gcc" "src/CMakeFiles/bdio_common.dir/common/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
