# Empty dependencies file for bdio_common.
# This may be replaced when dependencies are built.
