file(REMOVE_RECURSE
  "libbdio_common.a"
)
