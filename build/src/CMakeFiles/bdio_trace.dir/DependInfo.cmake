
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/replay.cc" "src/CMakeFiles/bdio_trace.dir/trace/replay.cc.o" "gcc" "src/CMakeFiles/bdio_trace.dir/trace/replay.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/bdio_trace.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/bdio_trace.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/version.cc" "src/CMakeFiles/bdio_trace.dir/trace/version.cc.o" "gcc" "src/CMakeFiles/bdio_trace.dir/trace/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bdio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
