src/CMakeFiles/bdio_trace.dir/trace/version.cc.o: \
 /root/repo/src/trace/version.cc /usr/include/stdc-predef.h
