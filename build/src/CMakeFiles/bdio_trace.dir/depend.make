# Empty dependencies file for bdio_trace.
# This may be replaced when dependencies are built.
