file(REMOVE_RECURSE
  "CMakeFiles/bdio_trace.dir/trace/replay.cc.o"
  "CMakeFiles/bdio_trace.dir/trace/replay.cc.o.d"
  "CMakeFiles/bdio_trace.dir/trace/trace.cc.o"
  "CMakeFiles/bdio_trace.dir/trace/trace.cc.o.d"
  "CMakeFiles/bdio_trace.dir/trace/version.cc.o"
  "CMakeFiles/bdio_trace.dir/trace/version.cc.o.d"
  "libbdio_trace.a"
  "libbdio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
