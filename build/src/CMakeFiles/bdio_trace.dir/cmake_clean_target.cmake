file(REMOVE_RECURSE
  "libbdio_trace.a"
)
