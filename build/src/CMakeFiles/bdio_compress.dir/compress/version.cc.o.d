src/CMakeFiles/bdio_compress.dir/compress/version.cc.o: \
 /root/repo/src/compress/version.cc /usr/include/stdc-predef.h
