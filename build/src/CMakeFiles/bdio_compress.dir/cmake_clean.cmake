file(REMOVE_RECURSE
  "CMakeFiles/bdio_compress.dir/compress/codec.cc.o"
  "CMakeFiles/bdio_compress.dir/compress/codec.cc.o.d"
  "CMakeFiles/bdio_compress.dir/compress/version.cc.o"
  "CMakeFiles/bdio_compress.dir/compress/version.cc.o.d"
  "libbdio_compress.a"
  "libbdio_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
