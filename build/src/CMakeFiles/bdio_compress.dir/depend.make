# Empty dependencies file for bdio_compress.
# This may be replaced when dependencies are built.
