file(REMOVE_RECURSE
  "libbdio_compress.a"
)
