# Empty compiler generated dependencies file for bdio_iostat.
# This may be replaced when dependencies are built.
