file(REMOVE_RECURSE
  "libbdio_iostat.a"
)
