file(REMOVE_RECURSE
  "CMakeFiles/bdio_iostat.dir/iostat/iostat.cc.o"
  "CMakeFiles/bdio_iostat.dir/iostat/iostat.cc.o.d"
  "CMakeFiles/bdio_iostat.dir/iostat/version.cc.o"
  "CMakeFiles/bdio_iostat.dir/iostat/version.cc.o.d"
  "libbdio_iostat.a"
  "libbdio_iostat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_iostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
