src/CMakeFiles/bdio_iostat.dir/iostat/version.cc.o: \
 /root/repo/src/iostat/version.cc /usr/include/stdc-predef.h
