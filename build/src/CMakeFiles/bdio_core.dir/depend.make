# Empty dependencies file for bdio_core.
# This may be replaced when dependencies are built.
