file(REMOVE_RECURSE
  "libbdio_core.a"
)
