src/CMakeFiles/bdio_core.dir/core/version.cc.o: \
 /root/repo/src/core/version.cc /usr/include/stdc-predef.h
