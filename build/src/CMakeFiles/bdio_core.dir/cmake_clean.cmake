file(REMOVE_RECURSE
  "CMakeFiles/bdio_core.dir/core/experiment.cc.o"
  "CMakeFiles/bdio_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/bdio_core.dir/core/report.cc.o"
  "CMakeFiles/bdio_core.dir/core/report.cc.o.d"
  "CMakeFiles/bdio_core.dir/core/version.cc.o"
  "CMakeFiles/bdio_core.dir/core/version.cc.o.d"
  "libbdio_core.a"
  "libbdio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
