src/CMakeFiles/bdio_os.dir/os/version.cc.o: /root/repo/src/os/version.cc \
 /usr/include/stdc-predef.h
