file(REMOVE_RECURSE
  "CMakeFiles/bdio_os.dir/os/file_system.cc.o"
  "CMakeFiles/bdio_os.dir/os/file_system.cc.o.d"
  "CMakeFiles/bdio_os.dir/os/page_cache.cc.o"
  "CMakeFiles/bdio_os.dir/os/page_cache.cc.o.d"
  "CMakeFiles/bdio_os.dir/os/version.cc.o"
  "CMakeFiles/bdio_os.dir/os/version.cc.o.d"
  "libbdio_os.a"
  "libbdio_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
