# Empty compiler generated dependencies file for bdio_os.
# This may be replaced when dependencies are built.
