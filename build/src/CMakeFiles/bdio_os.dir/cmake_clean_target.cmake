file(REMOVE_RECURSE
  "libbdio_os.a"
)
