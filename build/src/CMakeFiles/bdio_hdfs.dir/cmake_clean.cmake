file(REMOVE_RECURSE
  "CMakeFiles/bdio_hdfs.dir/hdfs/data_node.cc.o"
  "CMakeFiles/bdio_hdfs.dir/hdfs/data_node.cc.o.d"
  "CMakeFiles/bdio_hdfs.dir/hdfs/hdfs.cc.o"
  "CMakeFiles/bdio_hdfs.dir/hdfs/hdfs.cc.o.d"
  "CMakeFiles/bdio_hdfs.dir/hdfs/name_node.cc.o"
  "CMakeFiles/bdio_hdfs.dir/hdfs/name_node.cc.o.d"
  "CMakeFiles/bdio_hdfs.dir/hdfs/version.cc.o"
  "CMakeFiles/bdio_hdfs.dir/hdfs/version.cc.o.d"
  "libbdio_hdfs.a"
  "libbdio_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
