file(REMOVE_RECURSE
  "libbdio_hdfs.a"
)
