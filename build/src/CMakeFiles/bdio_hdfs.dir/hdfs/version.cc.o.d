src/CMakeFiles/bdio_hdfs.dir/hdfs/version.cc.o: \
 /root/repo/src/hdfs/version.cc /usr/include/stdc-predef.h
