# Empty dependencies file for bdio_hdfs.
# This may be replaced when dependencies are built.
