file(REMOVE_RECURSE
  "libbdio_net.a"
)
