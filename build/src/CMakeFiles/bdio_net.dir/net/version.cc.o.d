src/CMakeFiles/bdio_net.dir/net/version.cc.o: \
 /root/repo/src/net/version.cc /usr/include/stdc-predef.h
