file(REMOVE_RECURSE
  "CMakeFiles/bdio_net.dir/net/network.cc.o"
  "CMakeFiles/bdio_net.dir/net/network.cc.o.d"
  "CMakeFiles/bdio_net.dir/net/version.cc.o"
  "CMakeFiles/bdio_net.dir/net/version.cc.o.d"
  "libbdio_net.a"
  "libbdio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
