# Empty compiler generated dependencies file for bdio_net.
# This may be replaced when dependencies are built.
