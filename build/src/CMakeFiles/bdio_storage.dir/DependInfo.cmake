
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_device.cc" "src/CMakeFiles/bdio_storage.dir/storage/block_device.cc.o" "gcc" "src/CMakeFiles/bdio_storage.dir/storage/block_device.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/CMakeFiles/bdio_storage.dir/storage/disk_model.cc.o" "gcc" "src/CMakeFiles/bdio_storage.dir/storage/disk_model.cc.o.d"
  "/root/repo/src/storage/disk_stats.cc" "src/CMakeFiles/bdio_storage.dir/storage/disk_stats.cc.o" "gcc" "src/CMakeFiles/bdio_storage.dir/storage/disk_stats.cc.o.d"
  "/root/repo/src/storage/io_scheduler.cc" "src/CMakeFiles/bdio_storage.dir/storage/io_scheduler.cc.o" "gcc" "src/CMakeFiles/bdio_storage.dir/storage/io_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bdio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bdio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
