file(REMOVE_RECURSE
  "libbdio_storage.a"
)
