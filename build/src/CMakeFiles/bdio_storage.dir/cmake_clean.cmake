file(REMOVE_RECURSE
  "CMakeFiles/bdio_storage.dir/storage/block_device.cc.o"
  "CMakeFiles/bdio_storage.dir/storage/block_device.cc.o.d"
  "CMakeFiles/bdio_storage.dir/storage/disk_model.cc.o"
  "CMakeFiles/bdio_storage.dir/storage/disk_model.cc.o.d"
  "CMakeFiles/bdio_storage.dir/storage/disk_stats.cc.o"
  "CMakeFiles/bdio_storage.dir/storage/disk_stats.cc.o.d"
  "CMakeFiles/bdio_storage.dir/storage/io_scheduler.cc.o"
  "CMakeFiles/bdio_storage.dir/storage/io_scheduler.cc.o.d"
  "libbdio_storage.a"
  "libbdio_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
