# Empty compiler generated dependencies file for bdio_storage.
# This may be replaced when dependencies are built.
