file(REMOVE_RECURSE
  "CMakeFiles/storage_planning.dir/storage_planning.cc.o"
  "CMakeFiles/storage_planning.dir/storage_planning.cc.o.d"
  "storage_planning"
  "storage_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
