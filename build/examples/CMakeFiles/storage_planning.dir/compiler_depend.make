# Empty compiler generated dependencies file for storage_planning.
# This may be replaced when dependencies are built.
