# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bdio_common_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_sim_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_storage_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_os_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_net_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_compress_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_mrfunc_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_iostat_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_trace_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_core_test[1]_include.cmake")
include("/root/repo/build/tests/bdio_integration_test[1]_include.cmake")
