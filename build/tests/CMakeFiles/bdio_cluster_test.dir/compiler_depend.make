# Empty compiler generated dependencies file for bdio_cluster_test.
# This may be replaced when dependencies are built.
