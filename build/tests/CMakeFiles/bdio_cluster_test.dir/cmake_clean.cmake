file(REMOVE_RECURSE
  "CMakeFiles/bdio_cluster_test.dir/cluster/cpu_test.cc.o"
  "CMakeFiles/bdio_cluster_test.dir/cluster/cpu_test.cc.o.d"
  "CMakeFiles/bdio_cluster_test.dir/cluster/node_test.cc.o"
  "CMakeFiles/bdio_cluster_test.dir/cluster/node_test.cc.o.d"
  "bdio_cluster_test"
  "bdio_cluster_test.pdb"
  "bdio_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
