file(REMOVE_RECURSE
  "CMakeFiles/bdio_net_test.dir/net/network_property_test.cc.o"
  "CMakeFiles/bdio_net_test.dir/net/network_property_test.cc.o.d"
  "CMakeFiles/bdio_net_test.dir/net/network_test.cc.o"
  "CMakeFiles/bdio_net_test.dir/net/network_test.cc.o.d"
  "bdio_net_test"
  "bdio_net_test.pdb"
  "bdio_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
