# Empty compiler generated dependencies file for bdio_net_test.
# This may be replaced when dependencies are built.
