# Empty dependencies file for bdio_mrfunc_test.
# This may be replaced when dependencies are built.
