file(REMOVE_RECURSE
  "CMakeFiles/bdio_mrfunc_test.dir/mrfunc/local_runner_test.cc.o"
  "CMakeFiles/bdio_mrfunc_test.dir/mrfunc/local_runner_test.cc.o.d"
  "bdio_mrfunc_test"
  "bdio_mrfunc_test.pdb"
  "bdio_mrfunc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_mrfunc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
