file(REMOVE_RECURSE
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_extra_test.cc.o"
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_extra_test.cc.o.d"
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_property_test.cc.o"
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_property_test.cc.o.d"
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_test.cc.o"
  "CMakeFiles/bdio_hdfs_test.dir/hdfs/hdfs_test.cc.o.d"
  "bdio_hdfs_test"
  "bdio_hdfs_test.pdb"
  "bdio_hdfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_hdfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
