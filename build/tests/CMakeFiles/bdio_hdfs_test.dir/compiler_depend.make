# Empty compiler generated dependencies file for bdio_hdfs_test.
# This may be replaced when dependencies are built.
