# Empty dependencies file for bdio_core_test.
# This may be replaced when dependencies are built.
