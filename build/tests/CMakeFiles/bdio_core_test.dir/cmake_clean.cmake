file(REMOVE_RECURSE
  "CMakeFiles/bdio_core_test.dir/core/attribution_test.cc.o"
  "CMakeFiles/bdio_core_test.dir/core/attribution_test.cc.o.d"
  "CMakeFiles/bdio_core_test.dir/core/experiment_test.cc.o"
  "CMakeFiles/bdio_core_test.dir/core/experiment_test.cc.o.d"
  "CMakeFiles/bdio_core_test.dir/core/report_test.cc.o"
  "CMakeFiles/bdio_core_test.dir/core/report_test.cc.o.d"
  "bdio_core_test"
  "bdio_core_test.pdb"
  "bdio_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
