file(REMOVE_RECURSE
  "CMakeFiles/bdio_common_test.dir/common/histogram_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/bdio_common_test.dir/common/random_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/bdio_common_test.dir/common/stats_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/stats_test.cc.o.d"
  "CMakeFiles/bdio_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/bdio_common_test.dir/common/table_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/table_test.cc.o.d"
  "CMakeFiles/bdio_common_test.dir/common/time_series_test.cc.o"
  "CMakeFiles/bdio_common_test.dir/common/time_series_test.cc.o.d"
  "bdio_common_test"
  "bdio_common_test.pdb"
  "bdio_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
