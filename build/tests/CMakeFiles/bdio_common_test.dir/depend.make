# Empty dependencies file for bdio_common_test.
# This may be replaced when dependencies are built.
