file(REMOVE_RECURSE
  "CMakeFiles/bdio_sim_test.dir/sim/latch_test.cc.o"
  "CMakeFiles/bdio_sim_test.dir/sim/latch_test.cc.o.d"
  "CMakeFiles/bdio_sim_test.dir/sim/semaphore_test.cc.o"
  "CMakeFiles/bdio_sim_test.dir/sim/semaphore_test.cc.o.d"
  "CMakeFiles/bdio_sim_test.dir/sim/simulator_test.cc.o"
  "CMakeFiles/bdio_sim_test.dir/sim/simulator_test.cc.o.d"
  "bdio_sim_test"
  "bdio_sim_test.pdb"
  "bdio_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
