# Empty dependencies file for bdio_sim_test.
# This may be replaced when dependencies are built.
