# Empty compiler generated dependencies file for bdio_os_test.
# This may be replaced when dependencies are built.
