file(REMOVE_RECURSE
  "CMakeFiles/bdio_os_test.dir/os/file_system_test.cc.o"
  "CMakeFiles/bdio_os_test.dir/os/file_system_test.cc.o.d"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_extra_test.cc.o"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_extra_test.cc.o.d"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_fuzz_test.cc.o"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_fuzz_test.cc.o.d"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_test.cc.o"
  "CMakeFiles/bdio_os_test.dir/os/page_cache_test.cc.o.d"
  "bdio_os_test"
  "bdio_os_test.pdb"
  "bdio_os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
