file(REMOVE_RECURSE
  "CMakeFiles/bdio_workloads_test.dir/workloads/datagen_test.cc.o"
  "CMakeFiles/bdio_workloads_test.dir/workloads/datagen_test.cc.o.d"
  "CMakeFiles/bdio_workloads_test.dir/workloads/dfsio_test.cc.o"
  "CMakeFiles/bdio_workloads_test.dir/workloads/dfsio_test.cc.o.d"
  "CMakeFiles/bdio_workloads_test.dir/workloads/join_test.cc.o"
  "CMakeFiles/bdio_workloads_test.dir/workloads/join_test.cc.o.d"
  "CMakeFiles/bdio_workloads_test.dir/workloads/profile_test.cc.o"
  "CMakeFiles/bdio_workloads_test.dir/workloads/profile_test.cc.o.d"
  "CMakeFiles/bdio_workloads_test.dir/workloads/workloads_test.cc.o"
  "CMakeFiles/bdio_workloads_test.dir/workloads/workloads_test.cc.o.d"
  "bdio_workloads_test"
  "bdio_workloads_test.pdb"
  "bdio_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
