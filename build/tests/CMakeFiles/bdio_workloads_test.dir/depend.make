# Empty dependencies file for bdio_workloads_test.
# This may be replaced when dependencies are built.
