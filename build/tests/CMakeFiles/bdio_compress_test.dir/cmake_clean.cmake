file(REMOVE_RECURSE
  "CMakeFiles/bdio_compress_test.dir/compress/codec_test.cc.o"
  "CMakeFiles/bdio_compress_test.dir/compress/codec_test.cc.o.d"
  "bdio_compress_test"
  "bdio_compress_test.pdb"
  "bdio_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
