# Empty compiler generated dependencies file for bdio_compress_test.
# This may be replaced when dependencies are built.
