file(REMOVE_RECURSE
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/engine_sweep_test.cc.o"
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/engine_sweep_test.cc.o.d"
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/engine_test.cc.o"
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/engine_test.cc.o.d"
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/failure_test.cc.o"
  "CMakeFiles/bdio_mapreduce_test.dir/mapreduce/failure_test.cc.o.d"
  "bdio_mapreduce_test"
  "bdio_mapreduce_test.pdb"
  "bdio_mapreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
