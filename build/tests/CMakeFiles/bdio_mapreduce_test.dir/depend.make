# Empty dependencies file for bdio_mapreduce_test.
# This may be replaced when dependencies are built.
