file(REMOVE_RECURSE
  "CMakeFiles/bdio_integration_test.dir/integration/pipeline_test.cc.o"
  "CMakeFiles/bdio_integration_test.dir/integration/pipeline_test.cc.o.d"
  "bdio_integration_test"
  "bdio_integration_test.pdb"
  "bdio_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
