# Empty dependencies file for bdio_integration_test.
# This may be replaced when dependencies are built.
