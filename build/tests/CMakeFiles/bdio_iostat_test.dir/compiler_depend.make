# Empty compiler generated dependencies file for bdio_iostat_test.
# This may be replaced when dependencies are built.
