file(REMOVE_RECURSE
  "CMakeFiles/bdio_iostat_test.dir/iostat/iostat_test.cc.o"
  "CMakeFiles/bdio_iostat_test.dir/iostat/iostat_test.cc.o.d"
  "bdio_iostat_test"
  "bdio_iostat_test.pdb"
  "bdio_iostat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_iostat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
