file(REMOVE_RECURSE
  "CMakeFiles/bdio_trace_test.dir/trace/replay_test.cc.o"
  "CMakeFiles/bdio_trace_test.dir/trace/replay_test.cc.o.d"
  "CMakeFiles/bdio_trace_test.dir/trace/trace_test.cc.o"
  "CMakeFiles/bdio_trace_test.dir/trace/trace_test.cc.o.d"
  "bdio_trace_test"
  "bdio_trace_test.pdb"
  "bdio_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
