# Empty compiler generated dependencies file for bdio_trace_test.
# This may be replaced when dependencies are built.
