# Empty compiler generated dependencies file for bdio_storage_test.
# This may be replaced when dependencies are built.
