file(REMOVE_RECURSE
  "CMakeFiles/bdio_storage_test.dir/storage/block_device_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/block_device_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/cfq_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/cfq_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/disk_model_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/disk_model_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/io_scheduler_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/io_scheduler_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/ncq_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/ncq_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/ssd_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/ssd_test.cc.o.d"
  "CMakeFiles/bdio_storage_test.dir/storage/storage_property_test.cc.o"
  "CMakeFiles/bdio_storage_test.dir/storage/storage_property_test.cc.o.d"
  "bdio_storage_test"
  "bdio_storage_test.pdb"
  "bdio_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdio_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
