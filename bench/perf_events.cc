// Substrate bench: the simulator speed scoreboard. Runs a fixed,
// representative workload subset — the TeraSort slot-factor grid (the
// paper's central workload), TestDFSIO (storage-layer streaming), and a
// chaos scenario (faults + recovery machinery) — and emits BENCH_perf.json
// with events/sec, wall-clock, and peak RSS per workload.
//
// Two contracts make the numbers comparable over time:
//  - the *event counts* are deterministic (pure functions of --scale and
//    --seed), so any drift in "events" between two builds means simulated
//    behaviour changed, not just speed;
//  - the *rates* (events/sec, wall_s) are host-dependent; regressions are
//    judged against a baseline recorded on comparable hardware via
//    --baseline (CI keeps one under bench/baselines/).
//
// Runs are serial by design (--jobs is ignored): wall-clock per workload
// must not be perturbed by sibling simulations on other cores.
//
// Usage:
//   perf_events [--quick] [--out=BENCH_perf.json]
//               [--baseline=<file> [--tolerance=0.2]]
//               [--scale=N] [--seed=N] [--workers=N]
//               [--trace-out=F] [--metrics-out=F] [--blktrace-out=F]
//
// The observability flags attach the corresponding collectors to the
// TeraSort grid and write the artifacts after the scoreboard; they perturb
// wall-clock, so don't combine them with --baseline gating.
// Exit code: 0 on success, 1 if --baseline was given and any workload's
// events/sec regressed by more than --tolerance (default 20%).

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "core/experiment.h"
#include "core/report.h"
#include "dag/job_dag.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/dfsio.h"
#include "workloads/graph_profile.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

double PeakRssMib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  // ru_maxrss is KiB on Linux. Monotone over the process lifetime, so
  // per-workload values are "peak so far", not per-workload footprint.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Wall-clock seconds. The simulation itself must never read host time
/// (lint rule R2); the harness measuring the simulation is the exception.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct WorkloadScore {
  std::string name;
  int runs = 0;
  uint64_t events = 0;     ///< Deterministic: drift means behaviour change.
  double sim_seconds = 0;  ///< Simulated time covered (also deterministic).
  double wall_s = 0;
  double events_per_sec = 0;
  double peak_rss_mib = 0;  ///< Process peak when the workload finished.

  void Finish(const WallTimer& timer) {
    wall_s = timer.Seconds();
    events_per_sec = wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
    peak_rss_mib = PeakRssMib();
  }
};

// --- Workloads -----------------------------------------------------------

/// `retained`, when non-null, receives every cell's full result so main can
/// write the observability artifacts (--trace-out/--metrics-out/
/// --blktrace-out). Retention is opt-in: keeping results alive inflates
/// peak_rss_mib, so perf-measurement runs pass nullptr.
WorkloadScore RunTeraSortGrid(const core::BenchOptions& options,
                              std::vector<core::ExperimentResult>* retained) {
  WorkloadScore score;
  score.name = "terasort_grid";
  const std::vector<core::Factors> levels =
      bench::LevelsFor(bench::FactorContext::kSlots);
  WallTimer timer;
  for (const core::Factors& f : levels) {
    const core::ExperimentSpec spec =
        options.MakeSpec(workloads::WorkloadKind::kTeraSort, f);
    Result<core::ExperimentResult> r = core::RunExperiment(spec);
    BDIO_CHECK(r.ok()) << "terasort grid cell failed: "
                       << r.status().ToString();
    ++score.runs;
    score.events += r.value().events_processed;
    score.sim_seconds += r.value().duration_s;
    if (retained != nullptr) retained->push_back(std::move(r.value()));
  }
  score.Finish(timer);
  return score;
}

WorkloadScore RunDfsio(const core::BenchOptions& options) {
  WorkloadScore score;
  score.name = "dfsio";
  struct Config {
    uint32_t files;
    uint64_t bytes;
    uint32_t replication;
  };
  const Config configs[] = {{10, MiB(128), 3}, {30, MiB(64), 1}};
  // File sizes are the extension_dfsio defaults at the default 1/128 scale
  // and shrink proportionally below it (cluster disks are unscaled, so
  // only wall-clock changes, not feasibility).
  const double size_factor = options.scale * 128.0;
  WallTimer timer;
  for (const Config& c : configs) {
    Rng rng(options.seed);
    sim::Simulator sim;
    sim::ScopedLogClock log_clock(&sim);
    cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options),
                             16, rng.Fork());
    hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

    workloads::DfsioSpec spec;
    spec.num_files = c.files;
    spec.file_bytes = std::max<uint64_t>(
        MiB(4),
        static_cast<uint64_t>(static_cast<double>(c.bytes) * size_factor));
    spec.replication = c.replication;
    Result<workloads::DfsioResult> result = Status::Internal("not run");
    workloads::RunDfsio(&cluster, &dfs, spec,
                        [&](Result<workloads::DfsioResult> r) {
                          result = std::move(r);
                        });
    sim.Run();
    BDIO_CHECK(result.ok()) << result.status().ToString();
    ++score.runs;
    score.events += sim.events_processed();
    score.sim_seconds += ToSeconds(sim.Now());
  }
  score.Finish(timer);
  return score;
}

WorkloadScore RunChaos(const core::BenchOptions& options) {
  WorkloadScore score;
  score.name = "chaos";
  WallTimer timer;

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  faults::FaultInjector injector(&cluster, &dfs, &engine);

  // Early faults so the scenario bites at every --scale: a DataNode death
  // (re-replication + task re-execution) plus a fail-slow MR disk with
  // speculation picking up the stragglers.
  faults::FaultPlan plan;
  plan.KillDataNode(3, TimeAt(Seconds(2)));
  plan.DegradeDisk(5, /*mr_disk=*/true, 0, /*factor=*/4.0, TimeAt(Seconds(1)),
                   TimeAt(Seconds(60)));

  mapreduce::SimJobSpec spec = workload.jobs[0].spec;
  spec.speculative_execution = true;

  bool done = false;
  engine.RunJob(spec, [&](Status s, const mapreduce::JobCounters&) {
    BDIO_CHECK_OK(s);
    done = true;
  });
  BDIO_CHECK_OK(injector.Arm(plan));
  sim.Run();
  BDIO_CHECK(done);

  score.runs = 1;
  score.events = sim.events_processed();
  score.sim_seconds = ToSeconds(sim.Now());
  score.Finish(timer);
  return score;
}

WorkloadScore RunChaosRetry(const core::BenchOptions& options) {
  WorkloadScore score;
  score.name = "chaos_retry";
  WallTimer timer;

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  mapreduce::FaultToleranceConfig ft;
  ft.blacklist_strikes = 3;
  ft.blacklist_decay = Seconds(30);
  engine.SetFaultTolerance(ft);
  faults::FaultInjector injector(&cluster, &dfs, &engine);

  // The compute-side failure domain: a TaskTracker death (lost-map
  // re-execution) plus a crash-task volley (attempt budgets, backoff,
  // blacklist strikes). Early, so the scenario bites at every --scale.
  faults::FaultPlan plan;
  plan.KillTaskTracker(3, TimeAt(Seconds(2)));
  plan.CrashTask(5, TimeAt(Seconds(1)));

  bool done = false;
  engine.RunJob(workload.jobs[0].spec,
                [&](Status s, const mapreduce::JobCounters&) {
                  BDIO_CHECK_OK(s);
                  done = true;
                });
  BDIO_CHECK_OK(injector.Arm(plan));
  sim.Run();
  BDIO_CHECK(done);
  // The scenario must actually exercise the retry machinery.
  BDIO_CHECK(engine.maps_reexecuted() > 0 || engine.task_failures() > 0);

  score.runs = 1;
  score.events = sim.events_processed();
  score.sim_seconds = ToSeconds(sim.Now());
  score.Finish(timer);
  return score;
}

WorkloadScore RunGraphSssp(const core::BenchOptions& options) {
  WorkloadScore score;
  score.name = "graph_sssp";
  WallTimer timer;

  // The iterative shape the one-pass workloads above lack: a JobDag whose
  // rounds publish and then expire their state files. The functional model
  // graph is fixed-size (its cost is planning, not simulation) while the
  // simulated dataset follows --scale like every other workload.
  workloads::GraphPlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.model_nodes = 512;
  plan_options.seed = options.seed;
  workloads::GraphDagPlan plan =
      workloads::BuildGraphDag(workloads::GraphWorkload::kSssp, plan_options);

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  bench::PreloadOrExit(&dfs, plan.dataset_path, plan.dataset_bytes);
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  dag::JobDag jobdag(&sim, &engine, &dfs, std::move(plan.dag));
  bool done = false;
  jobdag.Run([&](Status s) {
    BDIO_CHECK_OK(s);
    done = true;
  });
  sim.Run();
  BDIO_CHECK(done);

  score.runs = 1;
  score.events = sim.events_processed();
  score.sim_seconds = ToSeconds(sim.Now());
  score.Finish(timer);
  return score;
}

// --- Scoreboard I/O ------------------------------------------------------

void WriteJson(const std::string& path, const std::string& mode,
               const core::BenchOptions& options,
               const std::vector<WorkloadScore>& scores) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_events: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  uint64_t total_events = 0;
  double total_wall = 0;
  for (const WorkloadScore& s : scores) {
    total_events += s.events;
    total_wall += s.wall_s;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(f, "  \"scale_denominator\": %.0f,\n", 1.0 / options.scale);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(options.seed));
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < scores.size(); ++i) {
    const WorkloadScore& s = scores[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"runs\": %d, \"events\": %llu, "
                 "\"sim_seconds\": %.3f, \"wall_s\": %.3f, "
                 "\"events_per_sec\": %.0f, \"peak_rss_mib\": %.1f}%s\n",
                 s.name.c_str(), s.runs,
                 static_cast<unsigned long long>(s.events), s.sim_seconds,
                 s.wall_s, s.events_per_sec, s.peak_rss_mib,
                 i + 1 < scores.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"total\": {\"events\": %llu, \"wall_s\": %.3f, "
               "\"events_per_sec\": %.0f, \"peak_rss_mib\": %.1f}\n",
               static_cast<unsigned long long>(total_events), total_wall,
               total_wall > 0
                   ? static_cast<double>(total_events) / total_wall
                   : 0.0,
               PeakRssMib());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Minimal scan of a prior BENCH_perf.json: finds the workload object by
/// name and pulls one numeric field out of it. Returns false when absent.
bool BaselineField(const std::string& json, const std::string& workload,
                   const std::string& field, double* out) {
  const size_t at = json.find("\"name\": \"" + workload + "\"");
  if (at == std::string::npos) return false;
  const size_t end = json.find('}', at);
  const size_t fat = json.find("\"" + field + "\":", at);
  if (fat == std::string::npos || fat > end) return false;
  *out = std::strtod(json.c_str() + fat + field.size() + 3, nullptr);
  return true;
}

int CheckBaseline(const std::string& path, double tolerance,
                  const std::vector<WorkloadScore>& scores) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_events: baseline %s not readable\n",
                 path.c_str());
    return 1;
  }
  std::string json;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
  std::fclose(f);

  int failures = 0;
  for (const WorkloadScore& s : scores) {
    double base_rate = 0;
    if (!BaselineField(json, s.name, "events_per_sec", &base_rate)) {
      std::printf("BASELINE  %-14s no entry in %s (skipped)\n",
                  s.name.c_str(), path.c_str());
      continue;
    }
    double base_events = 0;
    if (BaselineField(json, s.name, "events", &base_events) &&
        base_events != static_cast<double>(s.events)) {
      // Event-count drift is not a speed regression: it means the simulated
      // behaviour changed (new model code). The rate gate still applies;
      // refresh the baseline alongside the behaviour change.
      std::printf("BASELINE  %-14s event count drifted: %.0f -> %llu\n",
                  s.name.c_str(), base_events,
                  static_cast<unsigned long long>(s.events));
    }
    const double floor = base_rate * (1.0 - tolerance);
    const bool ok = s.events_per_sec >= floor;
    std::printf("BASELINE  %-14s %10.0f ev/s vs %10.0f baseline "
                "(floor %.0f): %s\n",
                s.name.c_str(), s.events_per_sec, base_rate, floor,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_perf.json";
  std::string baseline;
  double tolerance = 0.2;
  core::BenchOptions options = core::BenchOptions::Parse(
      argc, argv,
      [&](const std::string& arg) {
        if (arg == "--quick") {
          quick = true;
          return true;
        }
        if (arg.rfind("--out=", 0) == 0) {
          out = arg.substr(6);
          return true;
        }
        if (arg.rfind("--baseline=", 0) == 0) {
          baseline = arg.substr(11);
          return true;
        }
        if (arg.rfind("--tolerance=", 0) == 0) {
          tolerance = std::strtod(arg.c_str() + 12, nullptr);
          return true;
        }
        return false;
      },
      "  --quick            1/512 scale (CI smoke)\n"
      "  --out=<file>       scoreboard path (default BENCH_perf.json)\n"
      "  --baseline=<file>  fail on events/sec regression vs this file\n"
      "  --tolerance=<f>    allowed fractional regression (default 0.2)\n");
  if (quick) options.scale = 1.0 / 512;

  std::printf("perf_events: scale=1/%.0f seed=%llu workers=%u mode=%s\n",
              1.0 / options.scale,
              static_cast<unsigned long long>(options.seed),
              options.num_workers, quick ? "quick" : "full");

  // Observability artifacts ride on the TeraSort grid: traces go to the
  // first grid cell (trace_label), metrics dump covers every cell. Results
  // are only retained when an artifact was requested — see RunTeraSortGrid.
  const bool want_obs = !options.trace_out.empty() ||
                        !options.metrics_out.empty() ||
                        !options.blktrace_out.empty();
  if ((!options.trace_out.empty() || !options.blktrace_out.empty()) &&
      options.trace_label.empty()) {
    options.trace_label =
        bench::LevelsFor(bench::FactorContext::kSlots)
            .front()
            .Label(workloads::WorkloadKind::kTeraSort);
  }
  std::vector<core::ExperimentResult> retained;
  std::vector<WorkloadScore> scores;
  scores.push_back(RunTeraSortGrid(options, want_obs ? &retained : nullptr));
  scores.push_back(RunDfsio(options));
  scores.push_back(RunChaos(options));
  scores.push_back(RunChaosRetry(options));
  scores.push_back(RunGraphSssp(options));
  if (want_obs) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (const core::ExperimentResult& r : retained) {
      obs.emplace_back(r.label, &r);
    }
    core::WriteObsArtifacts(options, obs);
  }
  for (const WorkloadScore& s : scores) {
    std::printf("%-14s runs=%d events=%llu sim_s=%.1f wall_s=%.3f "
                "ev/s=%.0f rss=%.1fMiB\n",
                s.name.c_str(), s.runs,
                static_cast<unsigned long long>(s.events), s.sim_seconds,
                s.wall_s, s.events_per_sec, s.peak_rss_mib);
  }

  WriteJson(out, quick ? "quick" : "full", options, scores);
  std::printf("wrote %s\n", out.c_str());

  if (!baseline.empty()) return CheckBaseline(baseline, tolerance, scores);
  return 0;
}
