#include "bench/figure_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "workloads/profile.h"

namespace bdio::bench {

using core::Factors;
using core::GridRunner;

void PreloadOrExit(hdfs::Hdfs* dfs, const std::string& path,
                   uint64_t bytes) {
  const Status s = dfs->Preload(path, bytes);
  if (!s.ok()) {
    std::fprintf(stderr, "failed to preload dataset '%s' (%llu bytes): %s\n",
                 path.c_str(), static_cast<unsigned long long>(bytes),
                 s.ToString().c_str());
    std::exit(2);
  }
}

cluster::ClusterParams MakeScaledClusterParams(
    const core::BenchOptions& options) {
  cluster::ClusterParams cp;
  cp.num_workers = options.num_workers;
  cp.node.memory_bytes =
      static_cast<uint64_t>(static_cast<double>(GiB(16)) * options.scale);
  cp.node.daemon_bytes =
      static_cast<uint64_t>(static_cast<double>(GiB(2)) * options.scale);
  cp.node.per_slot_heap_bytes =
      static_cast<uint64_t>(static_cast<double>(MiB(200)) * options.scale);
  cp.node.min_cache_bytes = MiB(16);
  return cp;
}

std::vector<Factors> LevelsFor(FactorContext context) {
  switch (context) {
    case FactorContext::kSlots:
      return core::SlotsLevels();
    case FactorContext::kMemory:
      return core::MemoryLevels();
    case FactorContext::kCompression:
      return core::CompressionLevels();
  }
  return {};
}

std::string LevelLabel(FactorContext context, const Factors& f) {
  switch (context) {
    case FactorContext::kSlots:
      return f.slots.label;
    case FactorContext::kMemory:
      return f.MemoryLabel();
    case FactorContext::kCompression:
      return f.CompressionLabel();
  }
  return "?";
}

int RunFigure(int argc, char** argv, const FigureDef& def) {
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(def.id, def.caption, options);

  const std::vector<Factors> levels = LevelsFor(def.context);
  // --trace-out records one experiment; pick the figure's first grid cell.
  if (!options.trace_out.empty() && !levels.empty()) {
    options.trace_label =
        levels.front().Label(workloads::AllWorkloads().front());
  }
  GridRunner grid(options);
  // Submit the whole workload x level grid before printing anything: the
  // simulations run concurrently (up to --jobs of them) while the Get calls
  // below consume results in print order on this thread, keeping the table,
  // CSV, and shape-check output byte-identical to a serial run.
  grid.PrefetchAll(levels);

  TextTable table;
  std::vector<std::string> header{"config", "duration_s"};
  for (const std::string& group : def.groups) {
    for (iostat::Metric m : def.metrics) {
      header.push_back(group + " " + iostat::MetricName(m));
    }
  }
  table.SetHeader(std::move(header));

  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    for (const Factors& f : levels) {
      const core::ExperimentResult& res = grid.Get(w, f);
      std::vector<std::string> row;
      row.push_back(std::string(workloads::WorkloadShortName(w)) + "_" +
                    LevelLabel(def.context, f));
      row.push_back(TextTable::Num(res.duration_s, 1));
      for (const std::string& group : def.groups) {
        for (iostat::Metric m : def.metrics) {
          row.push_back(TextTable::Num(
              core::Summarize(res.group(group), m), 2));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (options.csv) {
    std::printf("\nPer-second series (CSV):\n");
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      for (const Factors& f : levels) {
        const core::ExperimentResult& res = grid.Get(w, f);
        for (const std::string& group : def.groups) {
          for (iostat::Metric m : def.metrics) {
            core::PrintSeriesCsv(
                res.label + " " + group + " " + iostat::MetricName(m),
                core::SeriesOf(res.group(group), m));
          }
        }
      }
    }
  }
  if (!options.outdir.empty()) {
    std::string prefix = def.id;
    for (char& c : prefix) {
      if (c == ' ') c = '_';
    }
    size_t written = 0;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      for (const Factors& f : levels) {
        const core::ExperimentResult& res = grid.Get(w, f);
        for (const std::string& group : def.groups) {
          for (iostat::Metric m : def.metrics) {
            core::WriteSeriesCsv(options.outdir,
                                 prefix + "_" + res.label + "_" + group +
                                     "_" + iostat::MetricName(m),
                                 core::SeriesOf(res.group(group), m));
            ++written;
          }
        }
      }
    }
    std::printf("\nwrote %zu series CSV files to %s/\n", written,
                options.outdir.c_str());
  }

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>>
        results;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      for (const Factors& f : levels) {
        const core::ExperimentResult& res = grid.Get(w, f);
        results.emplace_back(res.label, &res);
      }
    }
    core::WriteObsArtifacts(options, results);
  }

  if (!def.checks) return 0;
  return core::PrintShapeChecks(def.checks(grid, levels));
}

}  // namespace bdio::bench
