// Figure 2: effect of node memory (16G vs 32G) on disk read/write bandwidth.
// Paper findings: HDFS read bandwidth grows with memory for the large-input
// workloads; where the final output is small (K-means) the write bandwidth
// does not change.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  // (a) Large-input, write-pressured workloads read HDFS faster with 32G.
  for (WorkloadKind w : {WorkloadKind::kTeraSort}) {
    const double r16 =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kReadMBps);
    const double r32 =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kReadMBps);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS read bandwidth grows (or holds) with more memory",
        r32 >= r16 * 0.95});
  }
  // (b) K-means writes almost nothing: HDFS write bandwidth unchanged.
  {
    const double w16 = core::Summarize(
        grid.Get(WorkloadKind::kKMeans, lv[0]).hdfs,
        iostat::Metric::kWriteMBps);
    const double w32 = core::Summarize(
        grid.Get(WorkloadKind::kKMeans, lv[1]).hdfs,
        iostat::Metric::kWriteMBps);
    checks.push_back(core::ShapeCheck{
        "KM HDFS write bandwidth unchanged (tiny final output)",
        core::RoughlyEqual(w16, w32, 0.3, 1.0)});
  }
  // (c) CPU-bound scans are memory-insensitive on the read side.
  {
    const double r16 = core::Summarize(
        grid.Get(WorkloadKind::kAggregation, lv[0]).hdfs,
        iostat::Metric::kReadMBps);
    const double r32 = core::Summarize(
        grid.Get(WorkloadKind::kAggregation, lv[1]).hdfs,
        iostat::Metric::kReadMBps);
    checks.push_back(core::ShapeCheck{
        "AGG HDFS read bandwidth roughly unchanged (CPU bound)",
        core::RoughlyEqual(r16, r32, 0.25, 2.0)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 2";
  def.caption =
      "Disk read/write bandwidth vs node memory (HDFS and MapReduce disks)";
  def.context = bdio::bench::FactorContext::kMemory;
  def.metrics = {bdio::iostat::Metric::kReadMBps,
                 bdio::iostat::Metric::kWriteMBps};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
