// Extension bench: chaos matrix. Runs representative BigDataBench workloads
// (TeraSort = shuffle-heavy, Aggregation = combine-heavy) under a grid of
// deterministic fault scenarios driven by faults::FaultPlan — a DataNode/
// TaskTracker death, silent replica corruption in the input, a fail-slow
// disk, and the same fail-slow disk with speculative execution enabled —
// and reports what each fault costs in runtime and extra I/O: re-executed
// maps, re-replicated bytes, checksum repairs, and speculative waste.
//
// Determinism contract on display: the "empty plan" scenario arms an
// injector with no events and must match the injector-free healthy run
// exactly; every cell is a pure function of --seed, so stdout is
// byte-identical across --jobs levels and repeated runs.

#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/figure_common.h"
#include "check/invariants.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "core/runner/thread_pool.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

struct Scenario {
  std::string label;
  faults::FaultPlan plan;
  bool use_injector = true;   ///< false = the injector-free baseline.
  bool speculation = false;   ///< mapred.map.tasks.speculative.execution.
};

struct CellResult {
  double duration_s = 0;
  mapreduce::JobCounters counters;
  // HDFS recovery activity.
  uint64_t rereplicated_blocks = 0;
  uint64_t rereplicated_bytes = 0;
  uint64_t checksum_failures = 0;
  uint64_t read_failovers = 0;
  uint64_t pipeline_recoveries = 0;
  uint64_t unrecoverable_blocks = 0;
  // Engine-wide speculative activity (job counters miss losers that drain
  // after the job callback fires).
  uint64_t speculative_launched = 0;
  uint64_t speculative_killed = 0;
  uint64_t speculative_wasted_bytes = 0;
  uint64_t faults_injected = 0;
};

CellResult RunCell(const core::BenchOptions& options,
                   workloads::WorkloadKind kind, const Scenario& scenario,
                   core::ExperimentResult* obs_out = nullptr) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload = workloads::BuildPlan(kind, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  std::unique_ptr<faults::FaultInjector> injector;
  if (scenario.use_injector) {
    injector =
        std::make_unique<faults::FaultInjector>(&cluster, &dfs, &engine);
  }

  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceSession> trace;
  std::shared_ptr<obs::BlktraceSession> blktrace;
  if (obs_out) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    if (!options.trace_out.empty()) {
      trace = std::make_shared<obs::TraceSession>(&sim);
    }
    cluster.AttachObs(trace.get(), metrics.get());
    dfs.AttachObs(trace.get(), metrics.get());
    engine.AttachObs(trace.get(), metrics.get());
    if (injector) injector->AttachObs(trace.get(), metrics.get());
    if (!options.blktrace_out.empty()) {
      blktrace = std::make_shared<obs::BlktraceSession>(&sim);
      blktrace->AttachMetrics(metrics.get());
      cluster.AttachBlktrace(blktrace.get());
    }
  }

  // BDIO_CHECK_INVARIANTS=1 audits every layer as the chaos runs; checks
  // are read-only so the figure stays byte-identical either way.
  const auto checker = invariants::MaybeAttachFromEnv(
      &sim, &cluster, &dfs, &engine, metrics.get());

  mapreduce::SimJobSpec spec = workload.jobs[0].spec;
  spec.output_path += "-" + scenario.label;
  spec.speculative_execution = scenario.speculation;

  CellResult result;
  bool done = false;
  engine.RunJob(spec, [&](Status s, const mapreduce::JobCounters& c) {
    BDIO_CHECK_OK(s);
    result.counters = c;
    done = true;
  });
  if (injector) BDIO_CHECK_OK(injector->Arm(scenario.plan));
  sim.Run();
  BDIO_CHECK(done);
  result.duration_s = result.counters.DurationSeconds();
  result.rereplicated_blocks = dfs.rereplicated_blocks();
  result.rereplicated_bytes = dfs.rereplicated_bytes();
  result.checksum_failures = dfs.checksum_failures();
  result.read_failovers = dfs.read_failovers();
  result.pipeline_recoveries = dfs.pipeline_recoveries();
  result.unrecoverable_blocks = dfs.unrecoverable_blocks();
  result.speculative_launched = engine.speculative_launched();
  result.speculative_killed = engine.speculative_killed();
  result.speculative_wasted_bytes = engine.speculative_wasted_bytes();
  if (injector) result.faults_injected = injector->injected();
  if (obs_out) {
    obs_out->metrics = std::move(metrics);
    obs_out->trace = std::move(trace);
    obs_out->blktrace = std::move(blktrace);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension",
      "Chaos matrix: workloads x deterministic fault scenarios", options);

  const std::vector<workloads::WorkloadKind> kinds = {
      workloads::WorkloadKind::kTeraSort,
      workloads::WorkloadKind::kAggregation,
  };
  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;

  core::runner::ThreadPool pool(options.ResolvedJobs());

  // Phase 1: the injector-free healthy baseline per workload. Fault times
  // are placed relative to its duration so scenarios scale with --scale.
  std::vector<std::future<CellResult>> healthy_futures;
  for (workloads::WorkloadKind kind : kinds) {
    healthy_futures.push_back(pool.Async([&, kind] {
      return RunCell(options, kind,
                     Scenario{"healthy", faults::FaultPlan{}, false, false});
    }));
  }
  std::vector<CellResult> healthy;
  for (auto& f : healthy_futures) healthy.push_back(f.get());

  // Phase 2: the fault scenarios, all cells concurrent, printed in fixed
  // workload-major order.
  auto scenarios_for = [&](workloads::WorkloadKind kind,
                           const CellResult& base) {
    const auto plan = workloads::BuildPlan(kind, plan_options);
    const uint64_t block_bytes = hdfs::HdfsParams{}.block_bytes.bytes();
    const uint32_t num_blocks = static_cast<uint32_t>(
        (plan.dataset_bytes + block_bytes - 1) / block_bytes);
    std::vector<Scenario> scenarios;
    scenarios.push_back(
        Scenario{"empty-plan", faults::FaultPlan{}, true, false});
    scenarios.push_back(Scenario{
        "kill-dn3",
        faults::FaultPlan{}.KillDataNode(
            3, TimeAt(FromSeconds(base.duration_s * 0.25))),
        true, false});
    // Bitrot: the first replica of every input block rots before the job
    // reads it; local-replica preference means a large share of the reads
    // hit a bad copy, fail the checksum, fail over, and queue repairs.
    faults::FaultPlan bitrot;
    for (uint32_t b = 0; b < num_blocks; ++b) {
      bitrot.CorruptReplica(plan.dataset_path, b, 0, TimeAt(FromSeconds(0.25)));
    }
    scenarios.push_back(Scenario{"bitrot-input", std::move(bitrot), true,
                                 false});
    // Fail-slow: every disk of node 2 serves at 1/6 speed for the whole
    // run — the straggler machine of Observation 7 lineage — once without
    // and once with speculative backups.
    faults::FaultPlan slow;
    for (uint32_t d = 0; d < 3; ++d) {
      slow.DegradeDisk(2, /*mr_disk=*/false, d, 6.0, SimTime{}, SimTime{});
      slow.DegradeDisk(2, /*mr_disk=*/true, d, 6.0, SimTime{}, SimTime{});
    }
    scenarios.push_back(Scenario{"slow-node2", slow, true, false});
    scenarios.push_back(Scenario{"slow-node2+spec", slow, true, true});
    return scenarios;
  };

  const bool want_obs = !options.trace_out.empty() ||
                        !options.metrics_out.empty() ||
                        !options.blktrace_out.empty();
  core::ExperimentResult obs_holder;
  obs_holder.label = "TS_kill_dn3";

  // Build every scenario first: the futures hold references into this
  // structure, so it must not grow once any cell is in flight.
  std::vector<std::vector<Scenario>> scenarios;
  for (size_t k = 0; k < kinds.size(); ++k) {
    scenarios.push_back(scenarios_for(kinds[k], healthy[k]));
  }
  std::vector<std::vector<std::future<CellResult>>> cell_futures(
      kinds.size());
  for (size_t k = 0; k < kinds.size(); ++k) {
    for (const Scenario& s : scenarios[k]) {
      const bool observed = want_obs && k == 0 && s.label == "kill-dn3";
      cell_futures[k].push_back(pool.Async([&, k, observed, &s = s] {
        return RunCell(options, kinds[k], s,
                       observed ? &obs_holder : nullptr);
      }));
    }
  }

  TextTable table;
  table.SetHeader({"workload", "scenario", "duration_s", "maps", "spec",
                   "re-repl MB", "cksum fails", "failovers",
                   "spec wasted MB"});
  std::map<std::string, CellResult> cells;  // "<workload>/<scenario>"
  for (size_t k = 0; k < kinds.size(); ++k) {
    const auto plan = workloads::BuildPlan(kinds[k], plan_options);
    auto row = [&](const std::string& label, const CellResult& r) {
      cells[plan.jobs[0].spec.name + "/" + label] = r;
      table.AddRow(
          {plan.jobs[0].spec.name, label, TextTable::Num(r.duration_s, 1),
           std::to_string(r.counters.maps_launched),
           std::to_string(r.speculative_launched),
           TextTable::Num(static_cast<double>(r.rereplicated_bytes) / 1e6,
                          0),
           std::to_string(r.checksum_failures),
           std::to_string(r.read_failovers),
           TextTable::Num(
               static_cast<double>(r.speculative_wasted_bytes) / 1e6, 1)});
    };
    row("healthy", healthy[k]);
    for (size_t s = 0; s < scenarios[k].size(); ++s) {
      row(scenarios[k][s].label, cell_futures[k][s].get());
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (want_obs) {
    core::WriteObsArtifacts(options, {{obs_holder.label, &obs_holder}});
  }

  std::vector<core::ShapeCheck> checks;
  for (size_t k = 0; k < kinds.size(); ++k) {
    const std::string w =
        workloads::BuildPlan(kinds[k], plan_options).jobs[0].spec.name;
    const CellResult& base = cells[w + "/healthy"];
    const CellResult& empty = cells[w + "/empty-plan"];
    const CellResult& kill = cells[w + "/kill-dn3"];
    const CellResult& rot = cells[w + "/bitrot-input"];
    const CellResult& slow = cells[w + "/slow-node2"];
    const CellResult& spec = cells[w + "/slow-node2+spec"];
    checks.push_back(core::ShapeCheck{
        w + ": an armed-but-empty plan is byte-identical to no injector",
        empty.duration_s == base.duration_s &&
            empty.counters.hdfs_read_bytes ==
                base.counters.hdfs_read_bytes &&
            empty.faults_injected == 0});
    checks.push_back(core::ShapeCheck{
        w + ": healthy runs trigger no recovery machinery",
        base.rereplicated_blocks == 0 && base.checksum_failures == 0 &&
            base.read_failovers == 0 && base.pipeline_recoveries == 0 &&
            base.speculative_launched == 0});
    checks.push_back(core::ShapeCheck{
        w + ": a node death slows the job and re-executes maps",
        kill.duration_s > base.duration_s &&
            kill.counters.maps_launched > base.counters.maps_launched});
    checks.push_back(core::ShapeCheck{
        w + ": the dead DataNode's blocks re-replicate",
        kill.rereplicated_blocks > 0});
    checks.push_back(core::ShapeCheck{
        w + ": corrupt replicas are detected and repaired",
        rot.checksum_failures > 0 &&
            rot.rereplicated_blocks >= rot.checksum_failures});
    checks.push_back(core::ShapeCheck{
        w + ": bitrot detection and repair cost time, not correctness",
        rot.duration_s > base.duration_s &&
            rot.counters.hdfs_read_bytes >= base.counters.hdfs_read_bytes});
    checks.push_back(core::ShapeCheck{
        w + ": a fail-slow node drags the whole job",
        slow.duration_s > base.duration_s});
    checks.push_back(core::ShapeCheck{
        w + ": speculation launches backups against the straggler",
        spec.speculative_launched > 0 && spec.speculative_killed > 0});
    checks.push_back(core::ShapeCheck{
        w + ": losing attempts' I/O is charged as speculative waste",
        spec.speculative_wasted_bytes > 0});
    checks.push_back(core::ShapeCheck{
        w + ": every backed-up split commits exactly once "
            "(one kill per race)",
        spec.speculative_killed == spec.speculative_launched &&
            spec.counters.maps_launched ==
                base.counters.maps_launched +
                    static_cast<uint32_t>(spec.speculative_launched)});
  }
  return core::PrintShapeChecks(checks);
}
