// Extension bench: the I/O signature matrix. Every workload runs with the
// block-layer lifecycle tracer attached; the bdio-blkparse analyzer then
// distills each run into a feature vector (request mix, avgrq-sz,
// sequentiality, merge efficiency, await decomposition) per device class
// and per IoTag. The matrix makes the paper's central contrast visible in
// one table: TeraSort streams large sequential requests through the HDFS
// disks while its shuffle hammers the intermediate disks with small
// scattered I/O.
//
// The analyzer's class-level await and avgrq-sz are cross-checked against
// the registry instruments the devices bump independently
// (disk.await_ms / disk.request_sectors) — both are sums over the same
// per-request values, so they must agree to rounding.

#include <cmath>
#include <cstdio>
#include <map>

#include "bdio_blkparse/blkparse.h"
#include "bench/figure_common.h"
#include "common/io_tag.h"
#include "common/table.h"

namespace {

// FP-rounding-only tolerance: the two sides sum identical doubles in
// different orders.
bool SameToRounding(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
}

const bdio::blkparse::ScopeSummary* FindTag(
    const bdio::blkparse::Report& report, bdio::IoTag tag) {
  auto it = report.tags.find(static_cast<uint32_t>(tag));
  return it == report.tags.end() ? nullptr : &it->second;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "Block-layer I/O signatures per workload", options);

  const core::Factors factors = core::SlotsLevels()[0];  // 1_8, 16G, on
  if (!options.trace_out.empty() || !options.blktrace_out.empty()) {
    options.trace_label = factors.Label(workloads::AllWorkloads().front());
  }
  // Force lifecycle tracing on for every cell — this bench analyzes the
  // trace in-process, no --blktrace-out needed.
  core::GridRunner grid(options, [](const core::ExperimentSpec& spec) {
    core::ExperimentSpec traced = spec;
    traced.collect_blktrace = true;
    return core::RunExperiment(traced);
  });
  grid.PrefetchAll({factors});

  std::map<workloads::WorkloadKind, blkparse::Report> reports;
  TextTable classes;
  classes.SetHeader({"workload", "class", "requests", "avgrq-sz", "read",
                     "seq", "merge", "await ms", "p95 ms"});
  TextTable tags;
  tags.SetHeader({"workload", "source", "requests", "avgrq-sz", "read",
                  "merge", "await ms"});
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    const blkparse::Report report =
        blkparse::Analyze(blkparse::FromSession(*res.blktrace));
    for (const auto& [cls, s] : report.classes) {
      classes.AddRow({workloads::WorkloadShortName(w), cls,
                      std::to_string(s.requests),
                      TextTable::Num(s.avgrq_sectors, 1),
                      TextTable::Percent(s.read_fraction, 0),
                      TextTable::Num(s.seq_score, 3),
                      TextTable::Num(s.merge_ratio, 3),
                      TextTable::Num(s.await_ms.mean, 2),
                      TextTable::Num(s.await_ms.p95, 2)});
    }
    for (const auto& [tag, s] : report.tags) {
      if (tag == 0) continue;  // unattributed (preload) noise
      tags.AddRow({workloads::WorkloadShortName(w),
                   IoTagName(static_cast<IoTag>(tag)),
                   std::to_string(s.requests),
                   TextTable::Num(s.avgrq_sectors, 1),
                   TextTable::Percent(s.read_fraction, 0),
                   TextTable::Num(s.merge_ratio, 3),
                   TextTable::Num(s.await_ms.mean, 2)});
    }
    reports.emplace(w, report);
  }
  std::fputs(classes.ToString().c_str(), stdout);
  std::printf("\nper I/O source:\n");
  std::fputs(tags.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty() ||
      !options.blktrace_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      const auto& res = grid.Get(w, factors);
      obs.emplace_back(res.label, &res);
    }
    core::WriteObsArtifacts(options, obs);
  }

  using workloads::WorkloadKind;
  const blkparse::Report& ts = reports.at(WorkloadKind::kTeraSort);
  const blkparse::ScopeSummary& ts_hdfs = ts.classes.at("hdfs");
  const blkparse::ScopeSummary& ts_mr = ts.classes.at("mr");
  const blkparse::ScopeSummary* ts_input = FindTag(ts, IoTag::kHdfsInput);
  const blkparse::ScopeSummary* ts_shuffle = FindTag(ts, IoTag::kShuffleRun);
  const blkparse::ScopeSummary* ts_spill = FindTag(ts, IoTag::kMapSpill);

  uint64_t dropped = 0;
  uint64_t merges_anywhere = 0;
  bool all_shapes_sane = true;
  for (const auto& [w, report] : reports) {
    dropped += report.dropped_records;
    // Lifecycle sanity: every trace carries queued/dispatched/completed
    // records. Merges are workload-dependent (AGG/KM legitimately see
    // none), so they are only required to appear somewhere in the matrix —
    // and they need queue contention, so scales finer than ~1/256 can
    // legitimately miss that one check.
    all_shapes_sane = all_shapes_sane &&
                      report.action_totals[obs::BlkActionIndex(
                          obs::BlkAction::kQueue)] > 0 &&
                      report.action_totals[obs::BlkActionIndex(
                          obs::BlkAction::kDispatch)] > 0 &&
                      report.action_totals[obs::BlkActionIndex(
                          obs::BlkAction::kComplete)] > 0;
    merges_anywhere +=
        report.action_totals[obs::BlkActionIndex(obs::BlkAction::kMerge)];
  }

  // Registry cross-check on the TeraSort run: the analyzer's class-level
  // await mean and avgrq-sz must reproduce the device-side instruments.
  const auto& ts_res = grid.Get(WorkloadKind::kTeraSort, factors);
  bool await_matches = true;
  bool avgrq_matches = true;
  for (const char* cls : {"hdfs", "mr"}) {
    const obs::Labels labels{{"class", cls}};
    const obs::Histogram* await =
        ts_res.metrics->GetHistogram("disk.await_ms", labels, {});
    const obs::Histogram* rqsz =
        ts_res.metrics->GetHistogram("disk.request_sectors", labels, {});
    const blkparse::ScopeSummary& s = ts.classes.at(cls);
    await_matches = await_matches && SameToRounding(await->Mean(),
                                                    s.await_ms.mean);
    avgrq_matches = avgrq_matches && SameToRounding(rqsz->Mean(),
                                                    s.avgrq_sectors);
    std::printf(
        "cross-check %s: analyzer await %.6f ms vs registry %.6f ms, "
        "avgrq %.3f vs %.3f sectors\n",
        cls, s.await_ms.mean, await->Mean(), s.avgrq_sectors, rqsz->Mean());
  }

  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "all four traces carry Q/D/C records", all_shapes_sane});
  checks.push_back(core::ShapeCheck{
      "elevator merges show up in the matrix (M records)",
      merges_anywhere > 0});
  checks.push_back(
      core::ShapeCheck{"no trace dropped records", dropped == 0});
  checks.push_back(core::ShapeCheck{
      "TS is sequential-heavy on HDFS disks vs intermediate disks",
      ts_hdfs.seq_score > ts_mr.seq_score});
  checks.push_back(core::ShapeCheck{
      "TS HDFS requests are larger than intermediate-disk requests",
      ts_hdfs.avgrq_sectors > ts_mr.avgrq_sectors});
  checks.push_back(core::ShapeCheck{
      "TS input scanning is read-only",
      ts_input != nullptr && ts_input->read_fraction == 1.0});
  checks.push_back(core::ShapeCheck{
      "TS shuffle runs are smaller than input scans (small-random shuffle)",
      ts_shuffle != nullptr && ts_input != nullptr &&
          ts_shuffle->avgrq_sectors < ts_input->avgrq_sectors});
  checks.push_back(core::ShapeCheck{
      "TS map spills write (mixed or write-heavy source)",
      ts_spill != nullptr && ts_spill->read_fraction < 1.0});
  checks.push_back(core::ShapeCheck{
      "analyzer await reproduces registry disk.await_ms", await_matches});
  checks.push_back(core::ShapeCheck{
      "analyzer avgrq-sz reproduces registry disk.request_sectors",
      avgrq_matches});
  return core::PrintShapeChecks(checks);
}
