// Figure 5: effect of node memory on disk utilization. Paper findings:
// memory does not move HDFS utilization; on the MapReduce disks more memory
// reduces utilization for TeraSort and PageRank (their intermediate data is
// large) while Aggregation and K-means stay flat (their MR disks were never
// busy).

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : workloads::AllWorkloads()) {
    const double ua =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kUtil);
    const double ub =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kUtil);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS util unchanged by memory",
        core::RoughlyEqual(ua, ub, 0.45, 3.0)});
  }
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kPageRank}) {
    // More memory absorbs intermediate I/O. The run may also *shorten*
    // (raising the mean %util of the shorter window), so the robust
    // quantity is disk busy-time: mean util x duration.
    const auto& r16 = grid.Get(w, lv[0]);
    const auto& r32 = grid.Get(w, lv[1]);
    const double busy16 =
        core::Summarize(r16.mr, iostat::Metric::kUtil) * r16.duration_s;
    const double busy32 =
        core::Summarize(r32.mr, iostat::Metric::kUtil) * r32.duration_s;
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR disk busy-time reduced (or held) by more memory",
        busy32 <= busy16 * 1.05});
  }
  for (WorkloadKind w : {WorkloadKind::kAggregation, WorkloadKind::kKMeans}) {
    const double u16 =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kUtil);
    const double u32 =
        core::Summarize(grid.Get(w, lv[1]).mr, iostat::Metric::kUtil);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR util flat (disks not busy before the change)",
        core::RoughlyEqual(u16, u32, 0.5, 2.0)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 5";
  def.caption = "Disk utilization vs node memory (HDFS and MapReduce disks)";
  def.context = bdio::bench::FactorContext::kMemory;
  def.metrics = {bdio::iostat::Metric::kUtil};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
