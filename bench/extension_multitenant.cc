// Extension bench: multi-tenancy. The paper characterizes one workload at a
// time on a dedicated cluster; production Hadoop-1 clusters ran many jobs at
// once, multiplexed onto the same TaskTracker slots — and therefore the same
// page caches, elevator queues, disks, and 1 GbE links. This bench admits a
// deterministic arrival stream of heterogeneous jobs (TeraSort, Aggregation,
// K-means, PageRank profiles) through sched::JobQueue and compares cluster
// scheduling policies: FIFO (Hadoop's JobQueueTaskScheduler), weighted fair
// sharing, and fair sharing with preemption of speculative slots. Reported
// per (policy, concurrency): per-job slowdown vs running alone (mean / p95 /
// max), makespan, and HDFS- vs MR-disk utilization and await.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/figure_common.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "core/runner/thread_pool.h"
#include "hdfs/hdfs.h"
#include "iostat/iostat.h"
#include "mapreduce/engine.h"
#include "sched/job_queue.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

/// One entry of the arrival stream: a workload profile's first job.
struct JobProfile {
  workloads::WorkloadKind kind = workloads::WorkloadKind::kTeraSort;
  mapreduce::SimJobSpec spec;
};

struct CellResult {
  std::vector<double> durations_s;     ///< Per job, admission to completion.
  uint32_t maps_preempted = 0;         ///< Summed over jobs.
  double makespan_s = 0;
  double hdfs_util = 0, mr_util = 0;   ///< Mean %util over the run.
  double hdfs_await = 0, mr_await = 0; ///< Mean await (ms) while active.
};

/// Runs one simulated cluster with `stream` submitted through a JobQueue
/// (arrivals staggered 2 s apart) under the named policy. Deterministic:
/// everything derives from options.seed and the stream.
CellResult RunCell(const core::BenchOptions& options,
                   const std::string& policy,
                   const std::vector<JobProfile>& stream,
                   const std::vector<std::pair<std::string, uint64_t>>&
                       datasets,
                   core::ExperimentResult* obs_out = nullptr) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  for (const auto& [path, bytes] : datasets) {
    bench::PreloadOrExit(&dfs, path, bytes);
  }

  iostat::Monitor monitor(&sim, Seconds(1));
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster.node(n)->num_hdfs_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->hdfs_disk(d), "hdfs");
    }
    for (uint32_t d = 0; d < cluster.node(n)->num_mr_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->mr_disk(d), "mr");
    }
  }
  monitor.Start();

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  const std::unique_ptr<sched::Scheduler> policy_impl =
      sched::MakeScheduler(policy);
  BDIO_CHECK(policy_impl != nullptr) << "unknown policy " << policy;
  engine.SetScheduler(policy_impl.get());

  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceSession> trace;
  if (obs_out) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    if (!options.trace_out.empty()) {
      trace = std::make_shared<obs::TraceSession>(&sim);
    }
    cluster.AttachObs(trace.get(), metrics.get());
    dfs.AttachObs(trace.get(), metrics.get());
    engine.AttachObs(trace.get(), metrics.get());
  }

  std::vector<mapreduce::JobCounters> counters(stream.size());
  std::unique_ptr<sched::JobQueue> queue;
  queue = std::make_unique<sched::JobQueue>(
      &sim, static_cast<uint32_t>(stream.size()), [&](size_t index) {
        // Each job charges its own pool, so weighted fair sharing splits
        // the slot pool per job.
        engine.SubmitJob(
            stream[index].spec,
            [&, index](Status s, const mapreduce::JobCounters& c) {
              BDIO_CHECK_OK(s);
              counters[index] = c;
              queue->OnJobDone(index);
            },
            "pool" + std::to_string(index));
      });
  queue->OnDrained([&] { monitor.Stop(); });
  for (size_t j = 0; j < stream.size(); ++j) {
    queue->Submit(TimeAt(Seconds(2.0 * static_cast<double>(j))));
  }
  sim.Run();
  BDIO_CHECK(queue->completed() == stream.size());

  CellResult result;
  for (size_t j = 0; j < stream.size(); ++j) {
    result.durations_s.push_back(counters[j].DurationSeconds());
    result.maps_preempted += counters[j].maps_preempted;
    result.makespan_s =
        std::max(result.makespan_s, ToSeconds(counters[j].end_time));
  }
  result.hdfs_util = monitor.GroupMean("hdfs", iostat::Metric::kUtil).Mean();
  result.mr_util = monitor.GroupMean("mr", iostat::Metric::kUtil).Mean();
  result.hdfs_await =
      monitor.GroupActiveMean("hdfs", iostat::Metric::kAwait).ActiveMean();
  result.mr_await =
      monitor.GroupActiveMean("mr", iostat::Metric::kAwait).ActiveMean();
  if (obs_out) {
    obs_out->metrics = std::move(metrics);
    obs_out->trace = std::move(trace);
  }
  return result;
}

/// Same cluster, one job, submitted directly via the single-job RunJob path
/// with the engine's built-in default scheduler. Must match RunCell of a
/// one-job stream exactly — the multi-tenant refactor's equivalence check.
double RunDirect(const core::BenchOptions& options, const JobProfile& job,
                 const std::vector<std::pair<std::string, uint64_t>>&
                     datasets) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  for (const auto& [path, bytes] : datasets) {
    bench::PreloadOrExit(&dfs, path, bytes);
  }
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  double duration_s = -1;
  engine.RunJob(job.spec, [&](Status s, const mapreduce::JobCounters& c) {
    BDIO_CHECK_OK(s);
    duration_s = c.DurationSeconds();
  });
  sim.Run();
  BDIO_CHECK(duration_s >= 0);
  return duration_s;
}

double Quantile(std::vector<double> v, double q) {
  BDIO_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(idx > 0 ? idx - 1 : 0, v.size() - 1)];
}

uint32_t ParseConcurrencyOrDie(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0 || v > 64) {
    std::fprintf(stderr,
                 "--concurrency expects an integer in [1, 64], got '%s'\n",
                 s);
    std::exit(2);
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  std::string policy_arg = "all";
  uint32_t cmax = 6;
  const core::BenchOptions options = core::BenchOptions::Parse(
      argc, argv,
      [&](const std::string& arg) {
        if (arg.rfind("--policy=", 0) == 0) {
          policy_arg = arg.substr(9);
          return true;
        }
        if (arg.rfind("--concurrency=", 0) == 0) {
          cmax = ParseConcurrencyOrDie(arg.c_str() + 14);
          return true;
        }
        return false;
      },
      "  --policy=fifo|fair|fair-preempt|all  cluster scheduler(s) to run\n"
      "  --concurrency=N   sweep 1..N concurrent jobs (default 6)\n");
  core::PrintFigureHeader(
      "Extension",
      "Multi-tenant scheduling: job streams on shared slots/disks/links",
      options);

  std::vector<std::string> policies;
  if (policy_arg == "all") {
    policies = {"fifo", "fair", "fair-preempt"};
  } else {
    if (sched::MakeScheduler(policy_arg) == nullptr) {
      std::fprintf(stderr,
                   "--policy expects fifo|fair|fair-preempt|all, got '%s'\n",
                   policy_arg.c_str());
      return 2;
    }
    policies = {policy_arg};
  }

  // Heterogeneous profiles, longest first: a TeraSort head job followed by
  // progressively smaller workloads is the worst case for FIFO.
  const workloads::WorkloadKind mix[] = {
      workloads::WorkloadKind::kTeraSort,
      workloads::WorkloadKind::kAggregation,
      workloads::WorkloadKind::kKMeans,
      workloads::WorkloadKind::kPageRank,
  };
  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  std::vector<JobProfile> profiles;
  std::vector<std::pair<std::string, uint64_t>> datasets;
  for (workloads::WorkloadKind kind : mix) {
    const workloads::WorkloadPlan plan =
        workloads::BuildPlan(kind, plan_options);
    BDIO_CHECK(!plan.jobs.empty());
    profiles.push_back(JobProfile{kind, plan.jobs[0].spec});
    datasets.emplace_back(plan.dataset_path, plan.dataset_bytes);
  }

  auto make_stream = [&](uint32_t c) {
    std::vector<JobProfile> stream;
    for (uint32_t j = 0; j < c; ++j) {
      JobProfile p = profiles[j % profiles.size()];
      // Unique output per stream slot: two jobs of the same profile must
      // not collide on their output path.
      p.spec.output_path += "-mt" + std::to_string(j);
      stream.push_back(std::move(p));
    }
    return stream;
  };

  // All cells run concurrently (each is its own Simulator); results are
  // consumed in fixed print order, so stdout is byte-identical across
  // --jobs levels and repeated runs with the same seed.
  core::runner::ThreadPool pool(options.ResolvedJobs());
  const bool want_obs =
      !options.trace_out.empty() || !options.metrics_out.empty();
  core::ExperimentResult obs_holder;
  obs_holder.label =
      policies.front() + "_c" + std::to_string(cmax);

  std::vector<std::future<double>> solo_futures;
  for (size_t p = 0; p < profiles.size(); ++p) {
    solo_futures.push_back(pool.Async([&, p] {
      return RunCell(options, "fifo", {profiles[p]}, datasets)
          .durations_s[0];
    }));
  }
  std::future<double> direct_future =
      pool.Async([&] { return RunDirect(options, profiles[0], datasets); });
  std::map<std::string, std::vector<std::future<CellResult>>> cell_futures;
  for (const std::string& policy : policies) {
    for (uint32_t c = 1; c <= cmax; ++c) {
      const bool observed =
          want_obs && policy == policies.front() && c == cmax;
      cell_futures[policy].push_back(pool.Async([&, policy, c, observed] {
        return RunCell(options, policy, make_stream(c), datasets,
                       observed ? &obs_holder : nullptr);
      }));
    }
  }

  std::vector<double> solo_s;
  TextTable solo_table;
  solo_table.SetHeader({"profile (alone)", "duration_s"});
  for (size_t p = 0; p < profiles.size(); ++p) {
    solo_s.push_back(solo_futures[p].get());
    solo_table.AddRow({profiles[p].spec.name,
                       TextTable::Num(solo_s.back(), 1)});
  }
  std::fputs(solo_table.ToString().c_str(), stdout);
  const double direct_s = direct_future.get();

  struct CellStats {
    CellResult cell;
    double mean_sd = 0, p95_sd = 0, max_sd = 0;
  };
  std::map<std::string, std::vector<CellStats>> stats;
  TextTable table;
  table.SetHeader({"policy", "jobs", "makespan_s", "slowdown mean",
                   "slowdown p95", "slowdown max", "hdfs util%", "mr util%",
                   "hdfs await", "mr await", "preempted"});
  for (const std::string& policy : policies) {
    for (uint32_t c = 1; c <= cmax; ++c) {
      CellStats s;
      s.cell = cell_futures[policy][c - 1].get();
      std::vector<double> slowdowns;
      for (uint32_t j = 0; j < c; ++j) {
        slowdowns.push_back(s.cell.durations_s[j] /
                            solo_s[j % solo_s.size()]);
      }
      double sum = 0;
      for (double sd : slowdowns) sum += sd;
      s.mean_sd = sum / static_cast<double>(slowdowns.size());
      s.p95_sd = Quantile(slowdowns, 0.95);
      s.max_sd = *std::max_element(slowdowns.begin(), slowdowns.end());
      table.AddRow({policy, std::to_string(c),
                    TextTable::Num(s.cell.makespan_s, 1),
                    TextTable::Num(s.mean_sd, 2), TextTable::Num(s.p95_sd, 2),
                    TextTable::Num(s.max_sd, 2),
                    TextTable::Num(s.cell.hdfs_util, 1),
                    TextTable::Num(s.cell.mr_util, 1),
                    TextTable::Num(s.cell.hdfs_await, 2),
                    TextTable::Num(s.cell.mr_await, 2),
                    std::to_string(s.cell.maps_preempted)});
      stats[policy].push_back(std::move(s));
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (want_obs) {
    core::WriteObsArtifacts(options, {{obs_holder.label, &obs_holder}});
  }

  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "a single job through the scheduler matches the direct single-job "
      "path exactly",
      solo_s[0] == direct_s});
  const CellStats& head_solo = stats[policies.front()][0];
  checks.push_back(core::ShapeCheck{
      "a one-job stream is the solo baseline (slowdown == 1)",
      std::fabs(head_solo.max_sd - 1.0) < 1e-9});
  if (policies.size() > 1) {
    bool same = true;
    for (const std::string& policy : policies) {
      same = same && stats[policy][0].cell.makespan_s ==
                         head_solo.cell.makespan_s;
    }
    checks.push_back(core::ShapeCheck{
        "policies are indistinguishable with one job", same});
  }
  if (cmax >= 2) {
    for (const std::string& policy : policies) {
      const CellStats& last = stats[policy].back();
      checks.push_back(core::ShapeCheck{
          policy + ": contention slows jobs down (mean slowdown > 1)",
          last.mean_sd > 1.0});
    }
  }
  if (cmax >= 3 && stats.count("fifo") && stats.count("fair")) {
    // At low concurrency (<= ~1 heavy job in the mix) per-job slowdown is
    // dominated by shared-disk contention, which no slot scheduler can
    // remove; the classic fair-scheduling win appears once several jobs
    // queue behind heavy ones, so the check anchors at the deepest level.
    checks.push_back(core::ShapeCheck{
        "fair sharing lowers p95 per-job slowdown vs FIFO at " +
            std::to_string(cmax) + " concurrent jobs",
        stats["fair"].back().p95_sd < stats["fifo"].back().p95_sd});
  }
  if (cmax >= 2 && stats.count("fair-preempt")) {
    checks.push_back(core::ShapeCheck{
        "preemption fires under fair-preempt (speculative slots reclaimed)",
        stats["fair-preempt"].back().cell.maps_preempted > 0});
  }
  return core::PrintShapeChecks(checks);
}
