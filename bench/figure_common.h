#ifndef BDIO_BENCH_FIGURE_COMMON_H_
#define BDIO_BENCH_FIGURE_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/report.h"
#include "hdfs/hdfs.h"

namespace bdio::bench {

/// Materializes a bench input dataset, or prints the failure to stderr and
/// exits with the flag-error code 2 — a bad --scale/--workers combination
/// (dataset larger than the shrunken disks) is an operator error, not a
/// simulator invariant violation worth a CHECK abort.
void PreloadOrExit(hdfs::Hdfs* dfs, const std::string& path, uint64_t bytes);

/// The testbed ClusterParams every standalone extension bench builds: the
/// paper's worker node (16 GiB RAM, 2 GiB daemons, 200 MiB task heaps),
/// with the memory-side quantities scaled by --scale and the worker count
/// taken from --workers. Mirrors core::RunExperiment's setup.
cluster::ClusterParams MakeScaledClusterParams(
    const core::BenchOptions& options);

/// Which factor a figure varies (selects the paper's factor context).
enum class FactorContext { kSlots, kMemory, kCompression };

/// Declarative description of one paper figure: vary one factor, report one
/// or more iostat metrics for one or both disk classes, then evaluate the
/// paper's qualitative claims as shape checks.
struct FigureDef {
  std::string id;       ///< "Figure 7"
  std::string caption;  ///< Paper caption paraphrase.
  FactorContext context = FactorContext::kSlots;
  std::vector<iostat::Metric> metrics;
  std::vector<std::string> groups;  ///< subset of {"hdfs", "mr"}

  /// Builds the figure's shape checks from the completed grid.
  std::function<std::vector<core::ShapeCheck>(
      core::GridRunner&, const std::vector<core::Factors>&)>
      checks;
};

/// Factor levels for a context.
std::vector<core::Factors> LevelsFor(FactorContext context);

/// Short label for a level under a context ("1_8", "16G", "off", ...).
std::string LevelLabel(FactorContext context, const core::Factors& f);

/// Runs the figure: executes the experiment grid, prints the summary table
/// (one row per workload x level), optional CSV series, and the shape
/// checks. Returns the number of failed checks (the process exit code).
int RunFigure(int argc, char** argv, const FigureDef& def);

}  // namespace bdio::bench

#endif  // BDIO_BENCH_FIGURE_COMMON_H_
