// Extension bench: iterative graph analytics through the JobDag driver. The
// paper's four workloads are one-pass (PageRank aside); production clusters
// ran multi-round traversals whose I/O signature is different in kind — per
// round, the frontier shrinks, the state files written by round k are read
// once by round k+1 and then deleted, and the disks see a sawtooth of
// read-mostly and write-mostly phases. This bench plans BFS-style SSSP,
// label-propagation connected components, and triangle counting from real
// functional runs (workloads/graph.h), replays them as simulated dags
// (workloads/graph_profile.h), and reports per-round read/write volume,
// frontier decay, intermediate-data churn, and iostat-style device behavior
// — solo per workload and with all three sharing one cluster under fair
// scheduling.

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/figure_common.h"
#include "check/invariants.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "core/runner/thread_pool.h"
#include "dag/job_dag.h"
#include "hdfs/hdfs.h"
#include "iostat/iostat.h"
#include "mapreduce/engine.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workloads/datagen.h"
#include "workloads/graph.h"
#include "workloads/graph_profile.h"

namespace {

using namespace bdio;

/// One simulated dag round plus the device behavior inside its window.
struct RoundRow {
  dag::RoundRecord record;
  double hdfs_util = 0;  ///< Mean %util of the HDFS disks over the window.
  double mr_util = 0;
};

/// Everything one solo cell produces (model ground truth + simulated run).
struct GraphCell {
  std::string short_name;
  uint64_t dataset_bytes = 0;
  std::vector<workloads::GraphRoundModel> model_rounds;
  uint64_t model_reached = 0;
  uint64_t model_components = 0;
  uint64_t model_triangles = 0;

  std::vector<RoundRow> rounds;
  uint32_t nodes_completed = 0;
  uint32_t node_retries = 0;
  uint32_t nodes_skipped = 0;
  /// Names and attempt counts of nodes that failed, retried, or were
  /// skipped ("none" on a healthy run), from the per-node ledger.
  std::string churned_nodes;
  double makespan_s = 0;
  uint64_t published_bytes = 0;
  uint64_t expired_bytes = 0;
  uint64_t expired_files = 0;
  /// Node-counter totals, for the attribution cross-check against rounds.
  uint64_t node_hdfs_read = 0, node_hdfs_write = 0;
  uint64_t node_inter_write = 0, node_shuffle = 0;
  uint64_t final_bytes = 0;        ///< Namespace bytes under the final output.
  bool intermediates_gone = true;  ///< Expired paths empty in the namespace.
  double hdfs_util_mean = 0;
  std::string audit;  ///< JobDag::AuditInvariants at end of run; "" = clean.
};

struct CombinedCell {
  double makespan_s = 0;
  std::vector<double> dag_makespan_s;  ///< Per dag, presentation order.
  std::vector<std::string> audits;
};

double WindowMean(const TimeSeries& series, double start_s, double end_s) {
  const double dt = ToSeconds(series.interval());
  double sum = 0;
  size_t n = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const double t1 = series.TimeAt(i);
    if (t1 <= start_s || t1 - dt >= end_s) continue;
    sum += series.at(i);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0;
}

/// Namespace bytes under `root` (exact match or "<root>/..." — the same
/// boundary rule the dag's expiry sweep uses).
uint64_t BytesUnder(hdfs::Hdfs* dfs, const std::string& root) {
  uint64_t bytes = 0;
  for (const hdfs::FileEntry* file : dfs->name_node()->List(root)) {
    if (file->path != root &&
        file->path.compare(0, root.size() + 1, root + "/") != 0) {
      continue;
    }
    bytes += file->bytes;
  }
  return bytes;
}

workloads::GraphPlanOptions MakePlanOptions(const core::BenchOptions& options,
                                            uint32_t model_nodes,
                                            uint32_t max_rounds) {
  workloads::GraphPlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.model_nodes = model_nodes;
  plan_options.max_rounds = max_rounds;
  plan_options.seed = options.seed;
  return plan_options;
}

/// Runs one workload's dag alone on its own simulated cluster.
/// Deterministic: everything derives from options and the flags.
GraphCell RunSolo(const core::BenchOptions& options,
                  workloads::GraphWorkload workload, uint32_t model_nodes,
                  uint32_t max_rounds,
                  core::ExperimentResult* obs_out = nullptr) {
  workloads::GraphDagPlan plan = workloads::BuildGraphDag(
      workload, MakePlanOptions(options, model_nodes, max_rounds));

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  bench::PreloadOrExit(&dfs, plan.dataset_path, plan.dataset_bytes);

  iostat::Monitor monitor(&sim, Seconds(1));
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster.node(n)->num_hdfs_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->hdfs_disk(d), "hdfs");
    }
    for (uint32_t d = 0; d < cluster.node(n)->num_mr_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->mr_disk(d), "mr");
    }
  }
  monitor.Start();

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());

  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceSession> trace;
  if (obs_out != nullptr) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    if (!options.trace_out.empty()) {
      trace = std::make_shared<obs::TraceSession>(&sim);
    }
    cluster.AttachObs(trace.get(), metrics.get());
    dfs.AttachObs(trace.get(), metrics.get());
    engine.AttachObs(trace.get(), metrics.get());
  }

  // The dag outlives the checker (reverse destruction order): the checker's
  // detach-time final audit must still see a live dag.
  dag::JobDag jobdag(&sim, &engine, &dfs, std::move(plan.dag));
  jobdag.AttachObs(metrics.get());
  const auto checker = invariants::MaybeAttachFromEnv(
      &sim, &cluster, &dfs, &engine, metrics.get());
  if (checker != nullptr) checker->WatchDag(&jobdag);

  bool done = false;
  jobdag.Run([&](Status s) {
    BDIO_CHECK(s.ok()) << "graph dag " << jobdag.name() << ": "
                       << s.message();
    monitor.Stop();
    done = true;
  });
  sim.Run();
  BDIO_CHECK(done);

  GraphCell cell;
  cell.short_name = plan.short_name;
  cell.dataset_bytes = plan.dataset_bytes;
  cell.model_rounds = plan.model_rounds;
  cell.model_reached = plan.model_reached;
  cell.model_components = plan.model_components;
  cell.model_triangles = plan.model_triangles;

  const TimeSeries hdfs_util = monitor.GroupMean("hdfs", iostat::Metric::kUtil);
  const TimeSeries mr_util = monitor.GroupMean("mr", iostat::Metric::kUtil);
  cell.hdfs_util_mean = hdfs_util.Mean();
  for (const dag::RoundRecord& record : jobdag.round_records()) {
    RoundRow row;
    row.record = record;
    row.hdfs_util = WindowMean(hdfs_util, ToSeconds(record.start_time),
                               ToSeconds(record.end_time));
    row.mr_util = WindowMean(mr_util, ToSeconds(record.start_time),
                             ToSeconds(record.end_time));
    cell.rounds.push_back(row);
  }
  for (const dag::NodeRecord& node : jobdag.node_records()) {
    cell.node_hdfs_read += node.counters.hdfs_read_bytes;
    cell.node_hdfs_write += node.counters.hdfs_write_bytes;
    cell.node_inter_write += node.counters.intermediate_write_bytes;
    cell.node_shuffle += node.counters.shuffle_network_bytes;
    cell.makespan_s =
        std::max(cell.makespan_s, ToSeconds(node.counters.end_time));
  }
  cell.nodes_completed = jobdag.nodes_completed();
  cell.node_retries = jobdag.node_retries();
  cell.nodes_skipped = jobdag.nodes_skipped();
  for (const dag::NodeRecord& node : jobdag.node_records()) {
    if (node.attempts <= 1 && node.failures == 0 && !node.skipped) continue;
    if (!cell.churned_nodes.empty()) cell.churned_nodes += " ";
    cell.churned_nodes +=
        node.skipped ? node.name + "(skipped)"
                     : node.name + "(x" + std::to_string(node.attempts) +
                           "," + std::to_string(node.failures) + "f)";
  }
  if (cell.churned_nodes.empty()) cell.churned_nodes = "none";
  cell.published_bytes = jobdag.intermediate_published_bytes();
  cell.expired_bytes = jobdag.intermediate_expired_bytes();
  cell.expired_files = jobdag.intermediate_expired_files();
  cell.audit = jobdag.AuditInvariants();

  // Intermediate lifecycle, as the NameNode sees it: every expired path is
  // empty, the unconsumed final output is retained.
  const std::string out_root = "/out/" + cell.short_name;
  const uint32_t rounds = jobdag.rounds_completed();
  const std::string final_path =
      (workload == workloads::GraphWorkload::kTriangleCount)
          ? out_root + "/triangles"
          : out_root + "/round" + std::to_string(rounds);
  cell.final_bytes = BytesUnder(&dfs, final_path);
  cell.intermediates_gone = BytesUnder(&dfs, out_root + "/prepared") == 0;
  for (uint32_t r = 1; r < rounds; ++r) {
    cell.intermediates_gone =
        cell.intermediates_gone &&
        BytesUnder(&dfs, out_root + "/round" + std::to_string(r)) == 0;
  }

  if (obs_out != nullptr) {
    obs_out->metrics = std::move(metrics);
    obs_out->trace = std::move(trace);
  }
  return cell;
}

/// All three dags on one shared cluster: per-dag scheduler pools under
/// weighted fair sharing — the multi-tenant shape of iterative analytics.
CombinedCell RunCombined(const core::BenchOptions& options,
                         uint32_t model_nodes, uint32_t max_rounds) {
  std::vector<workloads::GraphDagPlan> plans;
  for (workloads::GraphWorkload workload : workloads::AllGraphWorkloads()) {
    workloads::GraphPlanOptions plan_options =
        MakePlanOptions(options, model_nodes, max_rounds);
    plan_options.pool = workloads::GraphWorkloadShortName(workload);
    plans.push_back(workloads::BuildGraphDag(workload, plan_options));
  }

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  for (const workloads::GraphDagPlan& plan : plans) {
    bench::PreloadOrExit(&dfs, plan.dataset_path, plan.dataset_bytes);
  }
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  const std::unique_ptr<sched::Scheduler> fair = sched::MakeScheduler("fair");
  BDIO_CHECK(fair != nullptr);
  engine.SetScheduler(fair.get());

  std::vector<std::unique_ptr<dag::JobDag>> dags;
  for (workloads::GraphDagPlan& plan : plans) {
    dags.push_back(std::make_unique<dag::JobDag>(&sim, &engine, &dfs,
                                                 std::move(plan.dag)));
  }
  const auto checker =
      invariants::MaybeAttachFromEnv(&sim, &cluster, &dfs, &engine, nullptr);
  if (checker != nullptr) checker->WatchDag(dags.front().get());

  uint32_t remaining = static_cast<uint32_t>(dags.size());
  for (const auto& jobdag : dags) {
    jobdag->Run([&, name = jobdag->name()](Status s) {
      BDIO_CHECK(s.ok()) << "combined dag " << name << ": " << s.message();
      --remaining;
    });
  }
  sim.Run();
  BDIO_CHECK(remaining == 0);

  CombinedCell cell;
  for (const auto& jobdag : dags) {
    double makespan_s = 0;
    for (const dag::NodeRecord& node : jobdag->node_records()) {
      makespan_s = std::max(makespan_s, ToSeconds(node.counters.end_time));
    }
    cell.dag_makespan_s.push_back(makespan_s);
    cell.makespan_s = std::max(cell.makespan_s, makespan_s);
    cell.audits.push_back(jobdag->AuditInvariants());
  }
  return cell;
}

/// Exact triangle count of the symmetrized model graph, straight from the
/// generator — the ground truth the MR pipeline's count must reproduce.
uint64_t BruteForceTriangles(uint64_t seed, uint32_t model_nodes) {
  Rng rng(seed);
  const std::vector<mrfunc::KeyValue> graph =
      workloads::GenWebGraph(&rng, model_nodes);
  std::map<std::string, std::set<std::string>> adj;
  for (const mrfunc::KeyValue& edge : graph) {
    size_t pos = 0;
    while (pos < edge.value.size()) {
      size_t end = edge.value.find(' ', pos);
      if (end == std::string::npos) end = edge.value.size();
      const std::string neighbor = edge.value.substr(pos, end - pos);
      if (!neighbor.empty() && neighbor != edge.key) {
        adj[edge.key].insert(neighbor);
        adj[neighbor].insert(edge.key);
      }
      pos = end + 1;
    }
  }
  uint64_t triangles = 0;
  for (const auto& [u, neighbors] : adj) {
    for (const std::string& v : neighbors) {
      if (!workloads::NumericLess(u, v)) continue;
      for (const std::string& w : neighbors) {
        if (!workloads::NumericLess(v, w)) continue;
        if (adj[v].count(w) > 0) ++triangles;
      }
    }
  }
  return triangles;
}

uint32_t ParseUint32OrDie(const char* flag, const std::string& s, long lo,
                          long hi) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "%s expects an integer in [%ld, %ld], got '%s'\n",
                 flag, lo, hi, s.c_str());
    std::exit(2);
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  uint32_t model_nodes = 1024;
  uint32_t max_rounds = 32;
  const core::BenchOptions options = core::BenchOptions::Parse(
      argc, argv,
      [&](const std::string& arg) {
        if (arg.rfind("--model-nodes=", 0) == 0) {
          model_nodes = ParseUint32OrDie("--model-nodes", arg.substr(14), 2,
                                         1 << 20);
          return true;
        }
        if (arg.rfind("--max-rounds=", 0) == 0) {
          max_rounds = ParseUint32OrDie("--max-rounds", arg.substr(13), 1,
                                        256);
          return true;
        }
        return false;
      },
      "  --model-nodes=N   functional model-graph size (default 1024)\n"
      "  --max-rounds=N    iteration cap for SSSP/CC (default 32)\n");
  core::PrintFigureHeader(
      "Extension",
      "Iterative graph analytics: per-round I/O, frontier decay, churn",
      options);

  const std::vector<workloads::GraphWorkload> family =
      workloads::AllGraphWorkloads();

  // Cells run concurrently (each its own Simulator); results are consumed in
  // fixed print order, so stdout is byte-identical across --jobs levels.
  core::runner::ThreadPool pool(options.ResolvedJobs());
  const bool want_obs =
      !options.trace_out.empty() || !options.metrics_out.empty();
  core::ExperimentResult obs_holder;
  obs_holder.label = "SSSP_solo";

  std::vector<std::future<GraphCell>> solo_futures;
  for (size_t w = 0; w < family.size(); ++w) {
    solo_futures.push_back(pool.Async([&, w] {
      return RunSolo(options, family[w], model_nodes, max_rounds,
                     want_obs && w == 0 ? &obs_holder : nullptr);
    }));
  }
  std::future<CombinedCell> combined_future = pool.Async(
      [&] { return RunCombined(options, model_nodes, max_rounds); });
  std::future<uint64_t> brute_future = pool.Async(
      [&] { return BruteForceTriangles(options.seed, model_nodes); });

  std::vector<GraphCell> cells;
  for (size_t w = 0; w < family.size(); ++w) {
    cells.push_back(solo_futures[w].get());
    const GraphCell& cell = cells.back();
    std::printf("[%s] dataset %.1f MB, %u jobs, %zu simulated rounds\n",
                cell.short_name.c_str(),
                static_cast<double>(cell.dataset_bytes) / 1e6,
                cell.nodes_completed, cell.rounds.size());
    TextTable table;
    table.SetHeader({"round", "jobs", "frontier", "updated", "read_MB",
                     "write_MB", "inter_MB", "shuffle_MB", "expired_MB",
                     "round_s", "hdfs util%", "mr util%"});
    for (size_t r = 0; r < cell.rounds.size(); ++r) {
      const RoundRow& row = cell.rounds[r];
      // Dag round r runs compute round r+1 (round 0 also runs prepare);
      // model_rounds[r] holds the frontier *after* that compute round.
      std::string frontier = "-";
      std::string updated = "-";
      if (r < cell.model_rounds.size()) {
        frontier = std::to_string(cell.model_rounds[r].frontier);
        updated = std::to_string(cell.model_rounds[r].updated);
      }
      table.AddRow(
          {std::to_string(row.record.round),
           std::to_string(row.record.nodes.size()), frontier, updated,
           TextTable::Num(static_cast<double>(row.record.hdfs_read_bytes) /
                          1e6, 1),
           TextTable::Num(static_cast<double>(row.record.hdfs_write_bytes) /
                          1e6, 1),
           TextTable::Num(
               static_cast<double>(row.record.intermediate_write_bytes) / 1e6,
               1),
           TextTable::Num(
               static_cast<double>(row.record.shuffle_network_bytes) / 1e6,
               1),
           TextTable::Num(static_cast<double>(row.record.expired_bytes) / 1e6,
                          1),
           TextTable::Num(ToSeconds(row.record.end_time) -
                          ToSeconds(row.record.start_time), 1),
           TextTable::Num(row.hdfs_util, 1), TextTable::Num(row.mr_util, 1)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }

  TextTable summary;
  summary.SetHeader({"workload", "rounds", "makespan_s", "published_MB",
                     "expired_MB", "expired_files", "final_MB", "hdfs util%",
                     "retries", "failed/retried nodes"});
  for (const GraphCell& cell : cells) {
    summary.AddRow(
        {cell.short_name, std::to_string(cell.rounds.size()),
         TextTable::Num(cell.makespan_s, 1),
         TextTable::Num(static_cast<double>(cell.published_bytes) / 1e6, 1),
         TextTable::Num(static_cast<double>(cell.expired_bytes) / 1e6, 1),
         std::to_string(cell.expired_files),
         TextTable::Num(static_cast<double>(cell.final_bytes) / 1e6, 1),
         TextTable::Num(cell.hdfs_util_mean, 1),
         std::to_string(cell.node_retries), cell.churned_nodes});
  }
  std::fputs(summary.ToString().c_str(), stdout);

  const CombinedCell combined = combined_future.get();
  const uint64_t brute_triangles = brute_future.get();
  TextTable combined_table;
  combined_table.SetHeader({"combined (fair pools)", "makespan_s"});
  for (size_t w = 0; w < family.size(); ++w) {
    combined_table.AddRow(
        {workloads::GraphWorkloadShortName(family[w]),
         TextTable::Num(combined.dag_makespan_s[w], 1)});
  }
  combined_table.AddRow({"all", TextTable::Num(combined.makespan_s, 1)});
  std::fputs(combined_table.ToString().c_str(), stdout);

  if (want_obs) {
    core::WriteObsArtifacts(options, {{obs_holder.label, &obs_holder}});
  }

  const GraphCell& sssp = cells[0];
  const GraphCell& cc = cells[1];
  const GraphCell& tri = cells[2];
  std::vector<core::ShapeCheck> checks;

  checks.push_back(core::ShapeCheck{
      "SSSP converges: the model frontier drains to zero within the cap",
      !sssp.model_rounds.empty() && sssp.model_rounds.back().frontier == 0 &&
          sssp.model_rounds.size() <= max_rounds});
  size_t peak = 0;
  bool decays = true;
  for (size_t r = 1; r < sssp.model_rounds.size(); ++r) {
    if (sssp.model_rounds[r].frontier > sssp.model_rounds[peak].frontier) {
      peak = r;
    }
  }
  for (size_t r = peak + 1; r < sssp.model_rounds.size(); ++r) {
    decays = decays && sssp.model_rounds[r].frontier <=
                           sssp.model_rounds[r - 1].frontier;
  }
  checks.push_back(core::ShapeCheck{
      "SSSP frontier decays monotonically after its peak", decays});
  checks.push_back(core::ShapeCheck{
      "SSSP reaches every node of the symmetrized web graph",
      sssp.model_reached == model_nodes});
  checks.push_back(core::ShapeCheck{
      "CC converges to one component (preferential attachment is connected)",
      cc.model_components == 1 && !cc.model_rounds.empty() &&
          cc.model_rounds.back().frontier == 0});
  checks.push_back(core::ShapeCheck{
      "triangle count matches a brute-force recount of the generator graph",
      tri.model_triangles == brute_triangles && brute_triangles > 0});

  bool attributed = true;
  bool rounds_active = true;
  bool replayed = true;
  for (const GraphCell& cell : cells) {
    uint64_t read = 0, write = 0, inter = 0, shuffle = 0;
    for (const RoundRow& row : cell.rounds) {
      read += row.record.hdfs_read_bytes;
      write += row.record.hdfs_write_bytes;
      inter += row.record.intermediate_write_bytes;
      shuffle += row.record.shuffle_network_bytes;
      rounds_active = rounds_active && row.record.hdfs_read_bytes +
                                               row.record.hdfs_write_bytes >
                                           0;
    }
    attributed = attributed && read == cell.node_hdfs_read &&
                 write == cell.node_hdfs_write &&
                 inter == cell.node_inter_write &&
                 shuffle == cell.node_shuffle;
    const size_t expected_rounds =
        cell.model_rounds.empty() ? 1 : cell.model_rounds.size();
    replayed = replayed && cell.rounds.size() == expected_rounds &&
               cell.nodes_completed == expected_rounds + 1;
  }
  checks.push_back(core::ShapeCheck{
      "per-round byte attribution is exact: round records sum to the job "
      "counters with zero unattributed bytes",
      attributed});
  checks.push_back(core::ShapeCheck{
      "every simulated round reads and writes HDFS data", rounds_active});
  checks.push_back(core::ShapeCheck{
      "the dags replay the model's full round schedule (one job per round "
      "plus prepare)",
      replayed});

  bool churn = true;
  bool lifecycle = true;
  double util_in_rounds = 0;
  for (const GraphCell& cell : cells) {
    churn = churn && cell.expired_bytes > 0 &&
            cell.expired_bytes <= cell.published_bytes;
    lifecycle = lifecycle && cell.final_bytes > 0 && cell.intermediates_gone;
    for (const RoundRow& row : cell.rounds) util_in_rounds += row.hdfs_util;
  }
  checks.push_back(core::ShapeCheck{
      "intermediate churn: every consumed round output expired, never more "
      "than was published",
      churn});
  checks.push_back(core::ShapeCheck{
      "HDFS lifecycle: final outputs retained, expired paths gone from the "
      "namespace",
      lifecycle});
  checks.push_back(core::ShapeCheck{
      "device activity is observed inside the round windows (iostat)",
      util_in_rounds > 0});

  double solo_max = 0, solo_sum = 0;
  for (const GraphCell& cell : cells) {
    solo_max = std::max(solo_max, cell.makespan_s);
    solo_sum += cell.makespan_s;
  }
  checks.push_back(core::ShapeCheck{
      "sharing one cluster costs: combined makespan >= slowest solo run, "
      "but fair pools overlap: < sum of solo runs",
      combined.makespan_s >= solo_max && combined.makespan_s < solo_sum});

  bool no_churn = true;
  for (const GraphCell& cell : cells) {
    no_churn = no_churn && cell.node_retries == 0 &&
               cell.nodes_skipped == 0 && cell.churned_nodes == "none";
  }
  checks.push_back(core::ShapeCheck{
      "healthy dags finish with zero node retries, failures, or skips",
      no_churn});

  bool audits_clean = true;
  for (const GraphCell& cell : cells) {
    audits_clean = audits_clean && cell.audit.empty();
  }
  for (const std::string& audit : combined.audits) {
    audits_clean = audits_clean && audit.empty();
  }
  checks.push_back(core::ShapeCheck{
      "JobDag invariant audits are clean in every cell", audits_clean});
  return core::PrintShapeChecks(checks);
}
