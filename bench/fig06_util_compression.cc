// Figure 6: effect of intermediate-data compression on disk utilization.
// Paper findings: with compression on, TeraSort and Aggregation still keep
// the HDFS disks comparatively busy; on the MR disks compression leaves
// TS/AGG/KM utilization roughly unchanged while PageRank's changes.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  // HDFS utilization under compression: TS and AGG above KM and PR.
  const double agg = core::Summarize(
      grid.Get(WorkloadKind::kAggregation, lv[1]).hdfs,
      iostat::Metric::kUtil);
  const double ts = core::Summarize(
      grid.Get(WorkloadKind::kTeraSort, lv[1]).hdfs, iostat::Metric::kUtil);
  const double km = core::Summarize(
      grid.Get(WorkloadKind::kKMeans, lv[1]).hdfs, iostat::Metric::kUtil);
  const double pr = core::Summarize(
      grid.Get(WorkloadKind::kPageRank, lv[1]).hdfs, iostat::Metric::kUtil);
  checks.push_back(core::ShapeCheck{
      "HDFS util (compressed): AGG and TS above KM and PR",
      agg > km && agg > pr && ts > km});
  // MR utilization unchanged for the small-intermediate workloads.
  for (WorkloadKind w : {WorkloadKind::kAggregation, WorkloadKind::kKMeans}) {
    const double off =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kUtil);
    const double on =
        core::Summarize(grid.Get(w, lv[1]).mr, iostat::Metric::kUtil);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR util unchanged by compression (little intermediate data)",
        core::RoughlyEqual(off, on, 0.5, 2.0)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 6";
  def.caption =
      "Disk utilization vs intermediate-data compression (HDFS and MR)";
  def.context = bdio::bench::FactorContext::kCompression;
  def.metrics = {bdio::iostat::Metric::kUtil};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
