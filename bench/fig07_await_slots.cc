// Figure 7: effect of task slots on the average waiting time of I/O
// requests (await - svctm). Paper finding: slot count does not move the
// waiting time.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const double wa =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kWait);
    const double wb =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kWait);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS wait unchanged across slot configs",
        core::RoughlyEqual(wa, wb, 0.5, 2.0)});
  }
  // TeraSort: queueing on the MR disks dwarfs the HDFS side.
  {
    const auto& ts = grid.Get(workloads::WorkloadKind::kTeraSort, lv[0]);
    checks.push_back(core::ShapeCheck{
        "TS MR wait exceeds HDFS wait (different access patterns)",
        core::Summarize(ts.mr, iostat::Metric::kWait) >
            core::Summarize(ts.hdfs, iostat::Metric::kWait)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 7";
  def.caption =
      "Average waiting time of I/O requests vs task slots (await - svctm)";
  def.context = bdio::bench::FactorContext::kSlots;
  def.metrics = {bdio::iostat::Metric::kWait, bdio::iostat::Metric::kAwait,
                 bdio::iostat::Metric::kSvctm};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
