// Extension bench: TestDFSIO, the classic Hadoop storage benchmark, against
// the simulated testbed — raw HDFS write/read throughput as a function of
// concurrency and replication. Useful for separating what the cluster's
// storage layer *can* do from what the paper's workloads *make* it do.

#include <cstdio>

#include "bench/figure_common.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "hdfs/hdfs.h"
#include "sim/simulator.h"
#include "workloads/dfsio.h"

namespace {

using namespace bdio;

workloads::DfsioResult Run(const core::BenchOptions& options,
                           uint32_t files, uint64_t file_bytes,
                           uint32_t replication,
                           core::ExperimentResult* obs_out = nullptr) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  // When this run is the observed one, attach a registry (and a trace if
  // requested) exactly like core::RunExperiment does.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceSession> trace;
  if (obs_out) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    if (!options.trace_out.empty()) {
      trace = std::make_shared<obs::TraceSession>(&sim);
    }
    cluster.AttachObs(trace.get(), metrics.get());
    dfs.AttachObs(trace.get(), metrics.get());
  }

  workloads::DfsioSpec spec;
  spec.num_files = files;
  spec.file_bytes = file_bytes;
  spec.replication = replication;
  Result<workloads::DfsioResult> result = Status::Internal("not run");
  workloads::RunDfsio(&cluster, &dfs, spec,
                      [&](Result<workloads::DfsioResult> r) {
                        result = std::move(r);
                      });
  sim.Run();
  BDIO_CHECK(result.ok()) << result.status().ToString();
  if (obs_out) {
    obs_out->metrics = std::move(metrics);
    obs_out->trace = std::move(trace);
  }
  return result.value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "TestDFSIO: raw HDFS throughput on the testbed", options);

  struct Config {
    uint32_t files;
    uint64_t bytes;
    uint32_t replication;
  };
  const Config configs[] = {
      {1, MiB(256), 3},  {10, MiB(128), 3}, {30, MiB(64), 3},
      {10, MiB(128), 1}, {30, MiB(64), 1},
  };

  TextTable table;
  table.SetHeader({"files", "MB/file", "repl", "write MB/s", "read MB/s"});
  const bool want_obs =
      !options.trace_out.empty() || !options.metrics_out.empty();
  core::ExperimentResult obs_holder;  // only label/metrics/trace are used
  obs_holder.label = "dfsio_1x256MB_r3";
  std::vector<workloads::DfsioResult> results;
  std::vector<Config> cfgs;
  for (const Config& c : configs) {
    const bool first = results.empty();
    results.push_back(Run(options, c.files, c.bytes, c.replication,
                          first && want_obs ? &obs_holder : nullptr));
    cfgs.push_back(c);
    const auto& r = results.back();
    table.AddRow({std::to_string(c.files),
                  TextTable::Num(static_cast<double>(c.bytes) / 1e6, 0),
                  std::to_string(c.replication),
                  TextTable::Num(r.write_mb_s, 1),
                  TextTable::Num(r.read_mb_s, 1)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (want_obs) {
    core::WriteObsArtifacts(options,
                            {{obs_holder.label, &obs_holder}});
  }

  std::vector<core::ShapeCheck> checks;
  // A single writer is NIC-bound (~118 MB/s payload); ten writers spread
  // over ten NICs but share them with 2x replication traffic and pay the
  // durability flush, so the scaling is sublinear.
  checks.push_back(core::ShapeCheck{
      "parallel writers scale aggregate write throughput",
      results[1].write_mb_s > 2.5 * results[0].write_mb_s});
  checks.push_back(core::ShapeCheck{
      "replication 1 writes faster than replication 3",
      results[3].write_mb_s > results[1].write_mb_s});
  checks.push_back(core::ShapeCheck{
      "reads beat triple-replicated writes",
      results[1].read_mb_s > results[1].write_mb_s});
  checks.push_back(core::ShapeCheck{
      "30 local readers approach the spindle aggregate",
      results[2].read_mb_s > 500.0});  // 30 disks x >= ~17 MB/s effective
  return core::PrintShapeChecks(checks);
}
