// Table 5: the peak HDFS disk read bandwidth of each workload under both
// slot configurations. Paper finding: the peak is a property of the
// workload's data volume and the disks, not of the slot count.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  using core::Factors;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Table 5", "Peak HDFS disk read bandwidth (per-disk mean, MB/s)",
      options);

  const std::vector<Factors> levels = core::SlotsLevels();
  if (!options.trace_out.empty()) {
    options.trace_label =
        levels.front().Label(workloads::AllWorkloads().front());
  }
  core::GridRunner grid(options);
  grid.PrefetchAll(levels);  // whole grid runs concurrently (--jobs)

  TextTable table;
  table.SetHeader({"workload", "peak rMB/s @1_8", "peak rMB/s @2_16",
                   "ratio"});
  std::vector<core::ShapeCheck> checks;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const double p1 = grid.Get(w, levels[0]).hdfs.peak_read_mbps;
    const double p2 = grid.Get(w, levels[1]).hdfs.peak_read_mbps;
    table.AddRow({workloads::WorkloadShortName(w), TextTable::Num(p1, 1),
                  TextTable::Num(p2, 1),
                  TextTable::Num(p2 / (p1 > 0 ? p1 : 1), 2)});
    // The iterative workloads' datasets are small at bench scale, so their
    // one-second peaks are noisier; allow them a wider band.
    const bool small_dataset = w == workloads::WorkloadKind::kKMeans ||
                               w == workloads::WorkloadKind::kPageRank;
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " peak read bandwidth stable across slot configs",
        core::RoughlyEqual(p1, p2, small_dataset ? 0.6 : 0.35, 2.0)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      for (const Factors& f : levels) {
        const auto& res = grid.Get(w, f);
        obs.emplace_back(res.label, &res);
      }
    }
    core::WriteObsArtifacts(options, obs);
  }

  // The paper's implied ordering: the scan-heavy workloads peak higher.
  const double agg =
      grid.Get(workloads::WorkloadKind::kAggregation, levels[0])
          .hdfs.peak_read_mbps;
  const double km = grid.Get(workloads::WorkloadKind::kKMeans, levels[0])
                        .hdfs.peak_read_mbps;
  checks.push_back(core::ShapeCheck{
      "AGG peaks above KM (scan vs CPU-bound trickle)", agg > km});
  return core::PrintShapeChecks(checks);
}
