// Figure 10: effect of task slots on the average size of I/O requests
// (avgrq-sz, sectors). Paper findings: slot count has little impact, and
// HDFS requests are larger than MapReduce requests (I/O granularity).

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const double sa =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kAvgRqSz);
    const double sb =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kAvgRqSz);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS avgrq-sz unchanged across slot configs",
        core::RoughlyEqual(sa, sb, 0.30, 16.0)});
    // HDFS granularity above MR granularity wherever MR disks are active.
    const double mr =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kAvgRqSz);
    if (mr > 0) {
      checks.push_back(core::ShapeCheck{
          std::string(workloads::WorkloadShortName(w)) +
              " HDFS requests larger than MR requests",
          sa > mr});
    }
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 10";
  def.caption = "Average I/O request size (sectors) vs task slots";
  def.context = bdio::bench::FactorContext::kSlots;
  def.metrics = {bdio::iostat::Metric::kAvgRqSz};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
