// Figure 4: effect of the number of task slots on disk utilization. Paper
// findings: slot count has little impact on utilization; TeraSort is the
// only workload that keeps the MapReduce disks busy.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : workloads::AllWorkloads()) {
    const double ua =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kUtil);
    const double ub =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kUtil);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS util unchanged across slot configs",
        core::RoughlyEqual(ua, ub, 0.45, 3.0)});
  }
  // TeraSort dominates MR-disk utilization; the other workloads' MR disks
  // are mostly idle.
  const double ts_mr = core::Summarize(
      grid.Get(WorkloadKind::kTeraSort, lv[0]).mr, iostat::Metric::kUtil);
  for (WorkloadKind w : {WorkloadKind::kAggregation, WorkloadKind::kKMeans}) {
    const double u =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kUtil);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR disks mostly idle (well below TeraSort's)",
        u < ts_mr / 4 && u < 10.0});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 4";
  def.caption = "Disk utilization vs task slots (HDFS and MapReduce disks)";
  def.context = bdio::bench::FactorContext::kSlots;
  def.metrics = {bdio::iostat::Metric::kUtil};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
