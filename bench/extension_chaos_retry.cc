// Extension bench: compute-side fault tolerance under chaos. Where
// extension_chaos kills whole DataNode hosts, this matrix attacks only the
// compute plane — a TaskTracker death (kill-tasktracker) plus a mass task
// crash (crash-task) — and sweeps the knobs that decide how the framework
// absorbs the hit: kill time (early map phase vs late), the per-task
// attempt budget (mapred.map.max.attempts), and tracker blacklisting on or
// off. Each TeraSort cell reports makespan stretch, I/O amplification,
// retries, re-executed maps, and wasted-work bytes against the healthy
// baseline. A second panel drives an iterative SSSP dag through the same
// TaskTracker death (the engine's re-execution keeps the dag alive), and a
// third exercises the dag-level RetryPolicy: a poisoned node retried then
// failing the dag, or written off with its subtree skipped (graceful
// degradation).
//
// Determinism contract: every cell is a pure function of --seed; stdout is
// byte-identical across --jobs levels, with or without faults armed, and
// under BDIO_CHECK_INVARIANTS=1.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/figure_common.h"
#include "check/invariants.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "core/runner/thread_pool.h"
#include "dag/job_dag.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/graph_profile.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

/// One TeraSort cell of the chaos-retry grid.
struct TsScenario {
  std::string label;
  bool faulted = false;     ///< Arm kill-tasktracker + crash-task.
  double kill_frac = 0.0;   ///< Fault time as a fraction of the healthy run.
  uint32_t budget = 4;      ///< mapred.map.max.attempts.
  bool blacklist = false;   ///< Strike-based tracker blacklisting on?
  bool use_injector = true; ///< false = the injector-free healthy baseline.
};

struct TsCell {
  bool ok = false;
  double duration_s = 0;
  mapreduce::JobCounters counters;
  uint64_t nodes_blacklisted = 0;
  uint64_t faults_injected = 0;

  /// Total bytes the cluster moved for the job (the I/O-amplification
  /// numerator): HDFS reads + logical writes + spills + shuffle.
  uint64_t TotalBytes() const {
    return counters.hdfs_read_bytes + counters.hdfs_write_bytes +
           counters.intermediate_write_bytes + counters.shuffle_network_bytes;
  }
};

TsCell RunTeraSort(const core::BenchOptions& options,
                   const TsScenario& scenario, double healthy_s) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  mapreduce::FaultToleranceConfig ft;
  ft.blacklist_strikes = scenario.blacklist ? 3 : UINT32_MAX;
  engine.SetFaultTolerance(ft);

  std::unique_ptr<faults::FaultInjector> injector;
  if (scenario.use_injector) {
    injector =
        std::make_unique<faults::FaultInjector>(&cluster, &dfs, &engine);
  }
  const auto checker =
      invariants::MaybeAttachFromEnv(&sim, &cluster, &dfs, &engine, nullptr);

  mapreduce::SimJobSpec spec = workload.jobs[0].spec;
  spec.output_path += "-" + scenario.label;
  spec.max_task_attempts = scenario.budget;

  TsCell cell;
  bool done = false;
  engine.RunJob(spec, [&](Status s, const mapreduce::JobCounters& c) {
    cell.ok = s.ok();
    cell.counters = c;
    done = true;
  });
  if (injector && scenario.faulted) {
    const SimTime t = TimeAt(FromSeconds(healthy_s * scenario.kill_frac));
    faults::FaultPlan plan;
    plan.KillTaskTracker(3, t).CrashTask(5, t);
    BDIO_CHECK_OK(injector->Arm(plan));
  } else if (injector) {
    BDIO_CHECK_OK(injector->Arm(faults::FaultPlan{}));
  }
  sim.Run();
  BDIO_CHECK(done);
  cell.duration_s = cell.counters.DurationSeconds();
  cell.nodes_blacklisted = engine.nodes_blacklisted();
  if (injector) cell.faults_injected = injector->injected();
  return cell;
}

/// One SSSP-dag cell: the iterative graph workload with (optionally) a
/// TaskTracker death mid-run — the dag survives via engine re-execution.
struct DagCell {
  bool ok = false;
  double makespan_s = 0;
  uint64_t total_bytes = 0;  ///< Engine-wide, summed over node counters.
  uint64_t maps_reexecuted = 0;
  uint64_t task_failures = 0;
  uint64_t retries = 0;
  uint64_t wasted_bytes = 0;
  uint32_t nodes_completed = 0;
  std::string audit;
};

DagCell RunSssp(const core::BenchOptions& options, bool faulted,
                double kill_frac, double healthy_s) {
  workloads::GraphPlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.model_nodes = 512;
  plan_options.max_rounds = 16;
  plan_options.seed = options.seed;
  workloads::GraphDagPlan plan =
      workloads::BuildGraphDag(workloads::GraphWorkload::kSssp, plan_options);

  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  bench::PreloadOrExit(&dfs, plan.dataset_path, plan.dataset_bytes);
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  faults::FaultInjector injector(&cluster, &dfs, &engine);

  dag::JobDag jobdag(&sim, &engine, &dfs, std::move(plan.dag));
  const auto checker =
      invariants::MaybeAttachFromEnv(&sim, &cluster, &dfs, &engine, nullptr);
  if (checker != nullptr) checker->WatchDag(&jobdag);

  DagCell cell;
  bool done = false;
  jobdag.Run([&](Status s) {
    cell.ok = s.ok();
    done = true;
  });
  faults::FaultPlan fault_plan;
  if (faulted) {
    fault_plan.KillTaskTracker(3, TimeAt(FromSeconds(healthy_s * kill_frac)));
  }
  BDIO_CHECK_OK(injector.Arm(fault_plan));
  sim.Run();
  BDIO_CHECK(done);
  for (const dag::NodeRecord& node : jobdag.node_records()) {
    cell.makespan_s =
        std::max(cell.makespan_s, ToSeconds(node.counters.end_time));
    cell.total_bytes += node.counters.hdfs_read_bytes +
                        node.counters.hdfs_write_bytes +
                        node.counters.intermediate_write_bytes +
                        node.counters.shuffle_network_bytes;
  }
  cell.maps_reexecuted = engine.maps_reexecuted();
  cell.task_failures = engine.task_failures();
  cell.retries = engine.retries_scheduled();
  cell.wasted_bytes = engine.wasted_work_bytes();
  cell.nodes_completed = jobdag.nodes_completed();
  cell.audit = jobdag.AuditInvariants();
  return cell;
}

/// One dag-level RetryPolicy cell: a four-node static dag whose node B
/// reads a path that does not exist and therefore fails every attempt.
///
///   A (terasort) ── D (reads A's output)
///   B (poisoned) ── C (reads B's output)
///
/// The policy decides the blast radius: fail the dag after B's budget, or
/// write B and C off and finish degraded with A and D's results.
struct PolicyCell {
  bool ok = false;
  bool degraded = false;
  Status status;
  uint32_t completed = 0;
  uint32_t retries = 0;
  uint32_t written_off = 0;
  uint32_t skipped = 0;
  uint32_t poisoned_attempts = 0;
  std::string churned;  ///< Failed/skipped node names from the ledger.
  std::string audit;
};

PolicyCell RunRetryPolicy(const core::BenchOptions& options,
                          const std::string& label, uint32_t max_node_retries,
                          dag::RetryPolicy::OnExhausted on_exhausted) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());

  const std::string root = "/out/retry-policy-" + label;
  dag::DagSpec spec;
  spec.name = "retry-policy-" + label;
  spec.retry.max_node_retries = max_node_retries;
  spec.retry.on_exhausted = on_exhausted;
  dag::DagNode a;
  a.spec = workload.jobs[0].spec;
  a.spec.name = "A-terasort";
  a.spec.output_path = root + "/a";
  dag::DagNode b;
  b.spec = workload.jobs[0].spec;
  b.spec.name = "B-poisoned";
  b.spec.input_path = "/missing/retry-policy-input";
  b.spec.output_path = root + "/b";
  dag::DagNode c;
  c.spec = workload.jobs[0].spec;
  c.spec.name = "C-downstream";
  c.spec.input_path = root + "/b";
  c.spec.output_path = root + "/c";
  c.deps = {1};
  dag::DagNode d;
  d.spec = workload.jobs[0].spec;
  d.spec.name = "D-downstream";
  d.spec.input_path = root + "/a";
  d.spec.output_path = root + "/d";
  d.deps = {0};
  spec.nodes = {std::move(a), std::move(b), std::move(c), std::move(d)};

  dag::JobDag jobdag(&sim, &engine, &dfs, std::move(spec));
  const auto checker =
      invariants::MaybeAttachFromEnv(&sim, &cluster, &dfs, &engine, nullptr);
  if (checker != nullptr) checker->WatchDag(&jobdag);

  PolicyCell cell;
  bool done = false;
  jobdag.Run([&](Status s) {
    cell.status = s;
    cell.ok = s.ok();
    done = true;
  });
  sim.Run();
  BDIO_CHECK(done);
  cell.degraded = jobdag.degraded();
  cell.completed = jobdag.nodes_completed();
  cell.retries = jobdag.node_retries();
  cell.written_off = jobdag.nodes_written_off();
  cell.skipped = jobdag.nodes_skipped();
  for (const dag::NodeRecord& node : jobdag.node_records()) {
    if (node.name == "B-poisoned") cell.poisoned_attempts = node.attempts;
    if (node.failures == 0 && !node.skipped) continue;
    if (!cell.churned.empty()) cell.churned += " ";
    cell.churned += node.skipped ? node.name + "(skipped)"
                                 : node.name + "(x" +
                                       std::to_string(node.attempts) + ")";
  }
  if (cell.churned.empty()) cell.churned = "none";
  cell.audit = jobdag.AuditInvariants();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension",
      "Chaos-retry matrix: task retries, blacklisting, dag degradation",
      options);

  core::runner::ThreadPool pool(options.ResolvedJobs());

  // Phase 1: healthy baselines (fault times scale with the run length).
  std::future<TsCell> ts_healthy_future = pool.Async([&] {
    return RunTeraSort(options, TsScenario{"healthy"}, 0);
  });
  std::future<DagCell> sssp_healthy_future =
      pool.Async([&] { return RunSssp(options, false, 0, 0); });
  const TsCell ts_healthy = ts_healthy_future.get();
  const DagCell sssp_healthy = sssp_healthy_future.get();

  // Phase 2: the grid — kill time x attempt budget x blacklist — plus the
  // armed-but-empty identity cell, all concurrent, printed in fixed order.
  std::vector<TsScenario> scenarios;
  scenarios.push_back(TsScenario{"empty-plan"});
  for (const double kill_frac : {0.25, 0.6}) {
    for (const uint32_t budget : {2u, 4u}) {
      for (const bool blacklist : {false, true}) {
        TsScenario s;
        char label[64];
        std::snprintf(label, sizeof(label), "k%02d-b%u-bl%s",
                      static_cast<int>(kill_frac * 100), budget,
                      blacklist ? "on" : "off");
        s.label = label;
        s.faulted = true;
        s.kill_frac = kill_frac;
        s.budget = budget;
        s.blacklist = blacklist;
        scenarios.push_back(s);
      }
    }
  }
  std::vector<std::future<TsCell>> ts_futures;
  for (const TsScenario& s : scenarios) {
    ts_futures.push_back(pool.Async(
        [&, &s = s] { return RunTeraSort(options, s, ts_healthy.duration_s); }));
  }
  std::future<DagCell> sssp_kill_future = pool.Async(
      [&] { return RunSssp(options, true, 0.3, sssp_healthy.makespan_s); });
  std::future<PolicyCell> rp_failfast_future = pool.Async([&] {
    return RunRetryPolicy(options, "failfast", 0,
                          dag::RetryPolicy::OnExhausted::kFailDag);
  });
  std::future<PolicyCell> rp_retry_future = pool.Async([&] {
    return RunRetryPolicy(options, "retry", 2,
                          dag::RetryPolicy::OnExhausted::kFailDag);
  });
  std::future<PolicyCell> rp_skip_future = pool.Async([&] {
    return RunRetryPolicy(options, "skip", 2,
                          dag::RetryPolicy::OnExhausted::kSkipSubtree);
  });

  TextTable ts_table;
  ts_table.SetHeader({"terasort cell", "ok", "duration_s", "stretch",
                      "io_amp", "maps", "fails", "retries", "reexec",
                      "reexec_MB", "wasted_MB", "blacklisted"});
  auto ts_row = [&](const std::string& label, const TsCell& cell) {
    ts_table.AddRow(
        {label, cell.ok ? "yes" : "NO", TextTable::Num(cell.duration_s, 1),
         TextTable::Num(cell.duration_s / ts_healthy.duration_s, 2),
         TextTable::Num(static_cast<double>(cell.TotalBytes()) /
                            static_cast<double>(ts_healthy.TotalBytes()),
                        3),
         std::to_string(cell.counters.maps_launched),
         std::to_string(cell.counters.task_failures),
         std::to_string(cell.counters.retries_scheduled),
         std::to_string(cell.counters.maps_reexecuted),
         TextTable::Num(static_cast<double>(cell.counters.reexec_read_bytes +
                                            cell.counters.reexec_write_bytes) /
                            1e6,
                        1),
         TextTable::Num(
             static_cast<double>(cell.counters.wasted_work_bytes) / 1e6, 1),
         std::to_string(cell.nodes_blacklisted)});
  };
  ts_row("healthy", ts_healthy);
  std::vector<TsCell> ts_cells;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ts_cells.push_back(ts_futures[i].get());
    ts_row(scenarios[i].label, ts_cells.back());
  }
  std::fputs(ts_table.ToString().c_str(), stdout);

  const DagCell sssp_kill = sssp_kill_future.get();
  TextTable dag_table;
  dag_table.SetHeader({"sssp dag cell", "ok", "makespan_s", "stretch",
                       "io_amp", "nodes", "fails", "reexec", "wasted_MB"});
  auto dag_row = [&](const std::string& label, const DagCell& cell) {
    dag_table.AddRow(
        {label, cell.ok ? "yes" : "NO", TextTable::Num(cell.makespan_s, 1),
         TextTable::Num(cell.makespan_s / sssp_healthy.makespan_s, 2),
         TextTable::Num(static_cast<double>(cell.total_bytes) /
                            static_cast<double>(sssp_healthy.total_bytes),
                        3),
         std::to_string(cell.nodes_completed),
         std::to_string(cell.task_failures),
         std::to_string(cell.maps_reexecuted),
         TextTable::Num(static_cast<double>(cell.wasted_bytes) / 1e6, 1)});
  };
  dag_row("healthy", sssp_healthy);
  dag_row("kill-tt3@30%", sssp_kill);
  std::fputs(dag_table.ToString().c_str(), stdout);

  const PolicyCell rp_failfast = rp_failfast_future.get();
  const PolicyCell rp_retry = rp_retry_future.get();
  const PolicyCell rp_skip = rp_skip_future.get();
  TextTable rp_table;
  rp_table.SetHeader({"retry policy", "ok", "degraded", "completed",
                      "retries", "written_off", "skipped", "B attempts",
                      "failed/skipped nodes"});
  auto rp_row = [&](const std::string& label, const PolicyCell& cell) {
    rp_table.AddRow({label, cell.ok ? "yes" : "NO",
                     cell.degraded ? "yes" : "no",
                     std::to_string(cell.completed),
                     std::to_string(cell.retries),
                     std::to_string(cell.written_off),
                     std::to_string(cell.skipped),
                     std::to_string(cell.poisoned_attempts), cell.churned});
  };
  rp_row("fail-fast", rp_failfast);
  rp_row("retry2-faildag", rp_retry);
  rp_row("retry2-skip", rp_skip);
  std::fputs(rp_table.ToString().c_str(), stdout);

  std::vector<core::ShapeCheck> checks;
  const TsCell& ts_empty = ts_cells[0];
  checks.push_back(core::ShapeCheck{
      "terasort: an armed-but-empty plan is byte-identical to no injector",
      ts_empty.ok && ts_empty.duration_s == ts_healthy.duration_s &&
          ts_empty.TotalBytes() == ts_healthy.TotalBytes() &&
          ts_empty.faults_injected == 0});
  checks.push_back(core::ShapeCheck{
      "terasort: the healthy run touches none of the retry machinery",
      ts_healthy.counters.task_failures == 0 &&
          ts_healthy.counters.retries_scheduled == 0 &&
          ts_healthy.counters.maps_reexecuted == 0 &&
          ts_healthy.counters.wasted_work_bytes == 0 &&
          ts_healthy.nodes_blacklisted == 0});
  bool faulted_ok = true;
  bool faulted_slower = true;
  bool faulted_wasteful = true;
  bool crash_retried = true;
  bool blacklist_fires = true;
  bool reexec_fires = true;
  for (size_t i = 1; i < scenarios.size(); ++i) {
    const TsScenario& s = scenarios[i];
    const TsCell& cell = ts_cells[i];
    faulted_ok = faulted_ok && cell.ok && cell.faults_injected == 2;
    faulted_slower = faulted_slower && cell.duration_s > ts_healthy.duration_s;
    faulted_wasteful =
        faulted_wasteful && cell.counters.wasted_work_bytes > 0 &&
        cell.TotalBytes() >= ts_healthy.TotalBytes();
    if (s.kill_frac == 0.25) {
      crash_retried = crash_retried && cell.counters.task_failures > 0 &&
                      cell.counters.retries_scheduled > 0;
      reexec_fires = reexec_fires && cell.counters.maps_reexecuted > 0 &&
                     cell.counters.reexec_read_bytes > 0;
    }
    blacklist_fires =
        blacklist_fires &&
        (s.blacklist ? (s.kill_frac != 0.25 || cell.nodes_blacklisted >= 1)
                     : cell.nodes_blacklisted == 0);
  }
  checks.push_back(core::ShapeCheck{
      "terasort: every faulted cell completes via retries, not failure",
      faulted_ok});
  checks.push_back(core::ShapeCheck{
      "terasort: compute faults cost time (makespan stretch > 1)",
      faulted_slower});
  checks.push_back(core::ShapeCheck{
      "terasort: faults waste I/O (wasted-work bytes > 0, amplification >= 1)",
      faulted_wasteful});
  checks.push_back(core::ShapeCheck{
      "terasort: early crash-task charges budgets and schedules backoffs",
      crash_retried});
  checks.push_back(core::ShapeCheck{
      "terasort: an early TaskTracker death re-executes lost map outputs "
      "with fresh HDFS reads",
      reexec_fires});
  checks.push_back(core::ShapeCheck{
      "terasort: strikes blacklist the crashing node exactly when the "
      "policy is on",
      blacklist_fires});

  checks.push_back(core::ShapeCheck{
      "sssp: healthy dag is untouched by the retry machinery",
      sssp_healthy.ok && sssp_healthy.task_failures == 0 &&
          sssp_healthy.maps_reexecuted == 0 && sssp_healthy.audit.empty()});
  checks.push_back(core::ShapeCheck{
      "sssp: the dag survives a TaskTracker death mid-iteration",
      sssp_kill.ok && sssp_kill.nodes_completed >= sssp_healthy.nodes_completed &&
          sssp_kill.audit.empty()});
  checks.push_back(core::ShapeCheck{
      "sssp: the death costs time and bytes",
      sssp_kill.makespan_s > sssp_healthy.makespan_s &&
          sssp_kill.total_bytes >= sssp_healthy.total_bytes});

  checks.push_back(core::ShapeCheck{
      "policy fail-fast: one attempt, dag fails, nothing skipped",
      !rp_failfast.ok && rp_failfast.poisoned_attempts == 1 &&
          rp_failfast.retries == 0 && rp_failfast.skipped == 0 &&
          rp_failfast.audit.empty()});
  checks.push_back(core::ShapeCheck{
      "policy retry+faildag: budget spent (3 attempts), dag still fails",
      !rp_retry.ok && rp_retry.poisoned_attempts == 3 &&
          rp_retry.retries == 2 && rp_retry.written_off == 1 &&
          rp_retry.skipped == 0 && rp_retry.audit.empty()});
  checks.push_back(core::ShapeCheck{
      "policy retry+skip: dag degrades gracefully — B written off, C "
      "skipped, A and D deliver",
      rp_skip.ok && rp_skip.degraded && rp_skip.poisoned_attempts == 3 &&
          rp_skip.written_off == 1 && rp_skip.skipped == 1 &&
          rp_skip.completed == 3 &&
          rp_skip.churned == "B-poisoned(x3) C-downstream(skipped)" &&
          rp_skip.audit.empty()});
  return core::PrintShapeChecks(checks);
}
