// Figure 1: effect of the number of task slots on disk read/write bandwidth
// in HDFS and MapReduce. Paper finding: changing slots from 1_8 to 2_16
// barely moves the bandwidth of any workload on either disk class.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& a = grid.Get(w, lv[0]);
    const auto& b = grid.Get(w, lv[1]);
    for (const char* group : {"hdfs", "mr"}) {
      for (iostat::Metric m :
           {iostat::Metric::kReadMBps, iostat::Metric::kWriteMBps}) {
        const double va = core::Summarize(a.group(group), m);
        const double vb = core::Summarize(b.group(group), m);
        checks.push_back(core::ShapeCheck{
            std::string(workloads::WorkloadShortName(w)) + " " + group +
                " " + iostat::MetricName(m) +
                " unchanged across slot configs",
            core::RoughlyEqual(va, vb, 0.40, 2.0)});
      }
    }
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 1";
  def.caption =
      "Disk read/write bandwidth vs task slots (HDFS and MapReduce disks)";
  def.context = bdio::bench::FactorContext::kSlots;
  def.metrics = {bdio::iostat::Metric::kReadMBps,
                 bdio::iostat::Metric::kWriteMBps};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
