// Table 3: the paper's classification of each workload's performance
// bottleneck — TeraSort I/O-bound; Aggregation CPU-bound; K-means CPU-bound
// in iterations / I/O-bound in clustering; PageRank CPU-bound.
//
// At bench scale the small iterative datasets under-fill the task slots
// (PageRank's scaled graph is only a handful of splits), which caps
// achievable CPU utilization; the classification checks therefore use the
// scale-invariant quantity CPU-seconds per input byte alongside the
// utilization comparison.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Table 3", "Performance-bottleneck classification per workload",
      options);

  const core::Factors factors = core::SlotsLevels()[0];
  if (!options.trace_out.empty()) {
    options.trace_label = factors.Label(workloads::AllWorkloads().front());
  }
  core::GridRunner grid(options);
  grid.PrefetchAll({factors});  // all four workloads run concurrently
  const double total_cores = 12.0 * options.num_workers;

  TextTable table;
  table.SetHeader({"workload", "cpu util%", "busiest disks util%",
                   "cpu ns/input-byte", "paper"});
  const char* paper[] = {"CPU bound", "I/O bound",
                         "CPU bound (iter) / I/O (clustering)", "CPU bound"};
  std::map<workloads::WorkloadKind, double> cpu, disk, ns_per_byte;
  int i = 0;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    cpu[w] = res.cpu_util.Mean() * 100;
    disk[w] = std::max(res.hdfs.util.Mean(), res.mr.util.Mean());
    uint64_t input_bytes = 0;
    for (const auto& j : res.jobs) input_bytes += j.hdfs_read_bytes;
    const double cpu_seconds =
        res.cpu_util.Mean() * res.duration_s * total_cores;
    ns_per_byte[w] =
        input_bytes ? cpu_seconds * 1e9 / static_cast<double>(input_bytes)
                    : 0;
    table.AddRow({workloads::WorkloadShortName(w),
                  TextTable::Num(cpu[w], 1), TextTable::Num(disk[w], 1),
                  TextTable::Num(ns_per_byte[w], 1), paper[i++]});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      const auto& res = grid.Get(w, factors);
      obs.emplace_back(res.label, &res);
    }
    core::WriteObsArtifacts(options, obs);
  }

  using workloads::WorkloadKind;
  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "TS is I/O bound (disks far busier than cores)",
      disk[WorkloadKind::kTeraSort] > 3 * cpu[WorkloadKind::kTeraSort]});
  checks.push_back(core::ShapeCheck{
      "KM is CPU bound (cores busier than disks)",
      cpu[WorkloadKind::kKMeans] > disk[WorkloadKind::kKMeans]});
  checks.push_back(core::ShapeCheck{
      "TS has the lowest CPU cost per byte (pure data movement)",
      ns_per_byte[WorkloadKind::kTeraSort] <
          std::min({ns_per_byte[WorkloadKind::kAggregation],
                    ns_per_byte[WorkloadKind::kKMeans],
                    ns_per_byte[WorkloadKind::kPageRank]})});
  checks.push_back(core::ShapeCheck{
      "KM and PR are compute-heavy per byte (>= 5x TeraSort)",
      ns_per_byte[WorkloadKind::kKMeans] >
              5 * ns_per_byte[WorkloadKind::kTeraSort] &&
          ns_per_byte[WorkloadKind::kPageRank] >
              5 * ns_per_byte[WorkloadKind::kTeraSort]});
  checks.push_back(core::ShapeCheck{
      "AGG has the highest CPU utilization of the four",
      cpu[WorkloadKind::kAggregation] >
          std::max({cpu[WorkloadKind::kTeraSort],
                    cpu[WorkloadKind::kKMeans],
                    cpu[WorkloadKind::kPageRank]})});
  return core::PrintShapeChecks(checks);
}
