// Table 7: the fraction of per-disk iostat samples with MapReduce-disk
// utilization above 90/95/99%. Paper values (percent):
//   TS 27.2/15.6/5.5; AGG, KM, PR all ~0.1 or below.
// The shape to reproduce: TeraSort dominates; everything else is near zero.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Table 7", "MapReduce disks: fraction of samples above x% util",
      options);

  const core::Factors factors = core::SlotsLevels()[0];  // 1_8, 16G, on
  if (!options.trace_out.empty()) {
    options.trace_label = factors.Label(workloads::AllWorkloads().front());
  }
  core::GridRunner grid(options);
  grid.PrefetchAll({factors});  // all four workloads run concurrently

  TextTable table;
  table.SetHeader({"workload", ">90%util", ">95%util", ">99%util",
                   "paper >90%"});
  const char* paper[] = {"~0.1%", "27.2%", "~0.1%", "0.1%"};
  std::map<workloads::WorkloadKind, double> above90;
  int i = 0;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    above90[w] = res.mr.util_above_90;
    table.AddRow({workloads::WorkloadShortName(w),
                  TextTable::Percent(res.mr.util_above_90),
                  TextTable::Percent(res.mr.util_above_95),
                  TextTable::Percent(res.mr.util_above_99), paper[i++]});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      const auto& res = grid.Get(w, factors);
      obs.emplace_back(res.label, &res);
    }
    core::WriteObsArtifacts(options, obs);
  }

  using workloads::WorkloadKind;
  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "TS dominates MR-disk saturation",
      above90[WorkloadKind::kTeraSort] >
          4 * std::max({above90[WorkloadKind::kAggregation],
                        above90[WorkloadKind::kKMeans],
                        above90[WorkloadKind::kPageRank]})});
  checks.push_back(core::ShapeCheck{
      "AGG and KM MR disks never saturated",
      above90[WorkloadKind::kAggregation] < 0.02 &&
          above90[WorkloadKind::kKMeans] < 0.02});
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " tail monotone in threshold",
        res.mr.util_above_90 >= res.mr.util_above_95 &&
            res.mr.util_above_95 >= res.mr.util_above_99});
  }
  return core::PrintShapeChecks(checks);
}
