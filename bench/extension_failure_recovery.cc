// Extension bench: fault tolerance. Hadoop's answer to a TaskTracker death
// is re-execution — lost map outputs are recomputed and in-flight reducers
// restart elsewhere — and HDFS's answer to the co-hosted DataNode dying is
// re-replication of every block the node held. This bench drives both
// through a faults::FaultPlan and quantifies the extra I/O and runtime a
// mid-job node failure costs TeraSort on the simulated testbed.

#include <cstdio>

#include "bench/figure_common.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

struct RunResult {
  double duration_s = 0;
  mapreduce::JobCounters counters;
  uint64_t rereplicated_blocks = 0;
  uint64_t rereplicated_bytes = 0;
};

RunResult RunTeraSort(const core::BenchOptions& options,
                      const faults::FaultPlan& plan,
                      core::ExperimentResult* obs_out = nullptr) {
  Rng rng(options.seed);
  sim::Simulator sim;
  sim::ScopedLogClock log_clock(&sim);
  cluster::Cluster cluster(&sim, bench::MakeScaledClusterParams(options), 16,
                           rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto workload =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  bench::PreloadOrExit(&dfs, workload.dataset_path, workload.dataset_bytes);

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  faults::FaultInjector injector(&cluster, &dfs, &engine);

  // When this run is the observed one, attach a registry (and a trace if
  // requested) exactly like core::RunExperiment does.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TraceSession> trace;
  if (obs_out) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    if (!options.trace_out.empty()) {
      trace = std::make_shared<obs::TraceSession>(&sim);
    }
    cluster.AttachObs(trace.get(), metrics.get());
    dfs.AttachObs(trace.get(), metrics.get());
    engine.AttachObs(trace.get(), metrics.get());
    injector.AttachObs(trace.get(), metrics.get());
  }

  RunResult result;
  bool done = false;
  engine.RunJob(workload.jobs[0].spec,
                [&](Status s, const mapreduce::JobCounters& c) {
                  BDIO_CHECK_OK(s);
                  result.counters = c;
                  done = true;
                });
  BDIO_CHECK_OK(injector.Arm(plan));
  sim.Run();
  BDIO_CHECK(done);
  result.duration_s = result.counters.DurationSeconds();
  result.rereplicated_blocks = dfs.rereplicated_blocks();
  result.rereplicated_bytes = dfs.rereplicated_bytes();
  if (obs_out) {
    obs_out->metrics = std::move(metrics);
    obs_out->trace = std::move(trace);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "Node-failure recovery cost under TeraSort", options);

  // The observed run is the early-failure one: its trace shows the killed
  // node's spans close out, the re-executed maps appear elsewhere, and the
  // hdfs.rereplication.* counters tick as the DataNode's blocks re-home.
  const bool want_obs =
      !options.trace_out.empty() || !options.metrics_out.empty();
  core::ExperimentResult obs_holder;  // only label/metrics/trace are used
  obs_holder.label = "TS_fail_at_25pct";
  const RunResult healthy = RunTeraSort(options, faults::FaultPlan{});
  const auto plan_at = [&](double fraction) {
    return faults::FaultPlan{}.KillDataNode(
        3, TimeAt(FromSeconds(healthy.duration_s * fraction)));
  };
  const RunResult early = RunTeraSort(options, plan_at(0.25),
                                      want_obs ? &obs_holder : nullptr);
  const RunResult late = RunTeraSort(options, plan_at(0.75));

  TextTable table;
  table.SetHeader({"scenario", "duration_s", "maps launched",
                   "hdfs read MB", "intermediate written MB",
                   "re-replicated MB"});
  auto row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, TextTable::Num(r.duration_s, 1),
                  std::to_string(r.counters.maps_launched),
                  TextTable::Num(
                      static_cast<double>(r.counters.hdfs_read_bytes) / 1e6,
                      0),
                  TextTable::Num(
                      static_cast<double>(
                          r.counters.intermediate_write_bytes) /
                          1e6,
                      0),
                  TextTable::Num(
                      static_cast<double>(r.rereplicated_bytes) / 1e6, 0)});
  };
  row("healthy (10 nodes)", healthy);
  row("node fails at 25%", early);
  row("node fails at 75%", late);
  std::fputs(table.ToString().c_str(), stdout);

  if (want_obs) {
    core::WriteObsArtifacts(options,
                            {{obs_holder.label, &obs_holder}});
  }

  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "failure slows the job down", early.duration_s > healthy.duration_s &&
                                        late.duration_s >
                                            healthy.duration_s});
  checks.push_back(core::ShapeCheck{
      "failure causes map re-execution",
      early.counters.maps_launched > healthy.counters.maps_launched ||
          late.counters.maps_launched > healthy.counters.maps_launched});
  checks.push_back(core::ShapeCheck{
      "late failure wastes more finished work than an early one",
      late.counters.maps_launched >= early.counters.maps_launched});
  checks.push_back(core::ShapeCheck{
      "re-execution re-reads input",
      late.counters.hdfs_read_bytes > healthy.counters.hdfs_read_bytes});
  checks.push_back(core::ShapeCheck{
      "a healthy run re-replicates nothing",
      healthy.rereplicated_blocks == 0});
  checks.push_back(core::ShapeCheck{
      "the dead DataNode's blocks re-replicate",
      early.rereplicated_blocks > 0 && late.rereplicated_blocks > 0});
  return core::PrintShapeChecks(checks);
}
