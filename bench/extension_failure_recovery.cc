// Extension bench: fault tolerance. Hadoop's answer to a TaskTracker death
// is re-execution — lost map outputs are recomputed and in-flight reducers
// restart elsewhere. This bench quantifies the extra I/O and runtime a
// mid-job node failure costs TeraSort on the simulated testbed.

#include <cstdio>

#include "bench/figure_common.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace {

using namespace bdio;

struct RunResult {
  double duration_s = 0;
  mapreduce::JobCounters counters;
};

RunResult RunTeraSort(const core::BenchOptions& options, bool inject,
                      double failure_fraction) {
  Rng rng(options.seed);
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = options.num_workers;
  cp.node.memory_bytes =
      static_cast<uint64_t>(static_cast<double>(GiB(16)) * options.scale);
  cp.node.daemon_bytes =
      static_cast<uint64_t>(static_cast<double>(GiB(2)) * options.scale);
  cp.node.per_slot_heap_bytes =
      static_cast<uint64_t>(static_cast<double>(MiB(200)) * options.scale);
  cp.node.min_cache_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 16, rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions plan_options;
  plan_options.scale = options.scale;
  plan_options.compress_intermediate = true;
  const auto plan =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, plan_options);
  BDIO_CHECK_OK(dfs.Preload(plan.dataset_path, plan.dataset_bytes));

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  RunResult result;
  bool done = false;
  engine.RunJob(plan.jobs[0].spec,
                [&](Status s, const mapreduce::JobCounters& c) {
                  BDIO_CHECK_OK(s);
                  result.counters = c;
                  done = true;
                });
  if (inject) {
    // Estimate the healthy duration once (memoized by the caller) and fail
    // a node at the requested fraction of it.
    const SimDuration when =
        FromSeconds(failure_fraction);  // caller passes absolute seconds
    sim.ScheduleAt(when, [&] { engine.InjectNodeFailure(3); });
  }
  sim.Run();
  BDIO_CHECK(done);
  result.duration_s = result.counters.DurationSeconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "Node-failure recovery cost under TeraSort", options);

  const RunResult healthy = RunTeraSort(options, false, 0);
  const RunResult early =
      RunTeraSort(options, true, healthy.duration_s * 0.25);
  const RunResult late =
      RunTeraSort(options, true, healthy.duration_s * 0.75);

  TextTable table;
  table.SetHeader({"scenario", "duration_s", "maps launched",
                   "hdfs read MB", "intermediate written MB"});
  auto row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, TextTable::Num(r.duration_s, 1),
                  std::to_string(r.counters.maps_launched),
                  TextTable::Num(
                      static_cast<double>(r.counters.hdfs_read_bytes) / 1e6,
                      0),
                  TextTable::Num(
                      static_cast<double>(
                          r.counters.intermediate_write_bytes) /
                          1e6,
                      0)});
  };
  row("healthy (10 nodes)", healthy);
  row("node fails at 25%", early);
  row("node fails at 75%", late);
  std::fputs(table.ToString().c_str(), stdout);

  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "failure slows the job down", early.duration_s > healthy.duration_s &&
                                        late.duration_s >
                                            healthy.duration_s});
  checks.push_back(core::ShapeCheck{
      "failure causes map re-execution",
      early.counters.maps_launched > healthy.counters.maps_launched ||
          late.counters.maps_launched > healthy.counters.maps_launched});
  checks.push_back(core::ShapeCheck{
      "late failure wastes more finished work than an early one",
      late.counters.maps_launched >= early.counters.maps_launched});
  checks.push_back(core::ShapeCheck{
      "re-execution re-reads input",
      late.counters.hdfs_read_bytes > healthy.counters.hdfs_read_bytes});
  return core::PrintShapeChecks(checks);
}
