// Validation bench: the reproduction's central methodological claim is that
// the paper's *shapes* are invariant under the dataset/memory scale factor
// (both are scaled together). This bench runs TeraSort and Aggregation at
// three scales and checks that the shape-carrying statistics hold at every
// one of them.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

namespace {

using namespace bdio;

core::ExperimentResult RunAt(const core::BenchOptions& base, double scale,
                             workloads::WorkloadKind w,
                             bool collect_trace = false) {
  core::BenchOptions options = base;
  options.scale = scale;
  core::ExperimentSpec spec = options.MakeSpec(w, core::SlotsLevels()[0]);
  spec.collect_trace = collect_trace;
  auto result = core::RunExperiment(spec);
  BDIO_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Validation", "Shape invariance across simulation scales", options);

  const double scales[] = {1.0 / 512, 1.0 / 256, 1.0 / 128};

  TextTable table;
  table.SetHeader({"scale", "workload", "hdfs rqsz", "mr rqsz", "hdfs wait",
                   "mr wait", "hdfs >90%", "mr >90%"});
  std::vector<core::ShapeCheck> checks;
  std::vector<core::ExperimentResult> all;  // kept alive for --metrics-out
  all.reserve(2 * (sizeof(scales) / sizeof(scales[0])));  // refs stay valid
  std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
  for (double scale : scales) {
    all.push_back(RunAt(options, scale, workloads::WorkloadKind::kTeraSort,
                        all.empty() && !options.trace_out.empty()));
    const auto& ts = all.back();
    all.push_back(
        RunAt(options, scale, workloads::WorkloadKind::kAggregation));
    const auto& agg = all.back();
    char label[32];
    std::snprintf(label, sizeof(label), "1/%.0f", 1.0 / scale);
    for (const auto* r : {&ts, &agg}) {
      obs.emplace_back(std::string(label) + (r == &ts ? "/TS" : "/AGG"), r);
      table.AddRow({label,
                    r == &ts ? "TS" : "AGG",
                    TextTable::Num(r->hdfs.avgrq_sz.ActiveMean(), 0),
                    TextTable::Num(r->mr.avgrq_sz.ActiveMean(), 0),
                    TextTable::Num(r->hdfs.wait_ms.ActiveMean(), 1),
                    TextTable::Num(r->mr.wait_ms.ActiveMean(), 1),
                    TextTable::Percent(r->hdfs.util_above_90),
                    TextTable::Percent(r->mr.util_above_90)});
    }
    // The shape-carrying orderings, at this scale:
    checks.push_back(core::ShapeCheck{
        std::string("TS: HDFS requests larger than MR requests @") + label,
        ts.hdfs.avgrq_sz.ActiveMean() > ts.mr.avgrq_sz.ActiveMean()});
    checks.push_back(core::ShapeCheck{
        std::string("TS: MR wait exceeds HDFS wait @") + label,
        ts.mr.wait_ms.ActiveMean() > ts.hdfs.wait_ms.ActiveMean()});
    checks.push_back(core::ShapeCheck{
        std::string("TS saturates MR disks, AGG does not @") + label,
        ts.mr.util_above_90 > 0.05 && agg.mr.util_above_90 < 0.02});
    // NOTE: the >90% *tail* statistic needs runs long enough that busy
    // bursts span whole 1 s sampling intervals, so it only stabilizes from
    // ~1/256 scale up (AGG's scan at 1/512 finishes in a couple of
    // samples). The mean-utilization ordering is scale-robust.
    checks.push_back(core::ShapeCheck{
        std::string("AGG keeps HDFS disks busier than TS does @") + label,
        agg.hdfs.util.Mean() > ts.hdfs.util.Mean()});
  }
  std::fputs(table.ToString().c_str(), stdout);
  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    core::WriteObsArtifacts(options, obs);
  }
  return core::PrintShapeChecks(checks);
}
