// Figure 9: effect of intermediate-data compression on the average waiting
// time of I/O requests. Paper findings: HDFS waiting time is unchanged
// (HDFS data is not compressed); MapReduce waiting time drops with the
// reduced intermediate volume; MR wait stays above HDFS wait because of the
// access-pattern difference.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kPageRank}) {
    const auto& off = grid.Get(w, lv[0]);
    const auto& on = grid.Get(w, lv[1]);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS wait unchanged by compression",
        core::RoughlyEqual(core::Summarize(off.hdfs, iostat::Metric::kWait),
                           core::Summarize(on.hdfs, iostat::Metric::kWait),
                           0.5, 2.0)});
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR wait drops (or holds) with compression",
        core::Summarize(on.mr, iostat::Metric::kWait) <=
            core::Summarize(off.mr, iostat::Metric::kWait) * 1.05});
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR wait exceeds HDFS wait",
        core::Summarize(off.mr, iostat::Metric::kWait) >
            core::Summarize(off.hdfs, iostat::Metric::kWait)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 9";
  def.caption =
      "Average waiting time of I/O requests vs intermediate compression";
  def.context = bdio::bench::FactorContext::kCompression;
  def.metrics = {bdio::iostat::Metric::kWait, bdio::iostat::Metric::kAwait,
                 bdio::iostat::Metric::kSvctm};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
