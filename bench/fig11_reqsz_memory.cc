// Figure 11: effect of node memory on the average size of I/O requests.
// Paper findings: memory has little impact on request size; HDFS
// granularity stays above MapReduce granularity.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const double s16 =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kAvgRqSz);
    const double s32 =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kAvgRqSz);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS avgrq-sz unchanged by memory",
        core::RoughlyEqual(s16, s32, 0.30, 16.0)});
    const double mr =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kAvgRqSz);
    if (mr > 0) {
      checks.push_back(core::ShapeCheck{
          std::string(workloads::WorkloadShortName(w)) +
              " HDFS requests larger than MR requests",
          s16 > mr});
    }
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 11";
  def.caption = "Average I/O request size (sectors) vs node memory";
  def.context = bdio::bench::FactorContext::kMemory;
  def.metrics = {bdio::iostat::Metric::kAvgRqSz};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
