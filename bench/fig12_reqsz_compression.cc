// Figure 12: effect of intermediate-data compression on the MapReduce
// disks' average request size. Paper findings: compression shrinks the
// requests, most for the workloads with large intermediate data (TeraSort,
// PageRank) and barely for Aggregation and K-means; HDFS request sizes are
// untouched (their data is not compressed).

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kPageRank}) {
    const double off =
        core::Summarize(grid.Get(w, lv[0]).mr, iostat::Metric::kAvgRqSz);
    const double on =
        core::Summarize(grid.Get(w, lv[1]).mr, iostat::Metric::kAvgRqSz);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR avgrq-sz shrinks (or holds) with compression",
        on <= off * 1.05});
  }
  // HDFS request size untouched by intermediate compression.
  for (WorkloadKind w : {WorkloadKind::kTeraSort}) {
    const double off =
        core::Summarize(grid.Get(w, lv[0]).hdfs, iostat::Metric::kAvgRqSz);
    const double on =
        core::Summarize(grid.Get(w, lv[1]).hdfs, iostat::Metric::kAvgRqSz);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " HDFS avgrq-sz unchanged by compression",
        core::RoughlyEqual(off, on, 0.3, 16.0)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 12";
  def.caption =
      "MapReduce-disk average request size vs intermediate compression";
  def.context = bdio::bench::FactorContext::kCompression;
  def.metrics = {bdio::iostat::Metric::kAvgRqSz};
  def.groups = {"mr", "hdfs"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
