// Ablation bench for the Hadoop-side knobs the paper holds fixed: the
// map-side sort buffer (io.sort.mb), the reducer's parallel shuffle copies,
// and the reduce slow-start threshold — each shifts where and when the
// intermediate data hits the disks. Runs TeraSort, the workload whose
// intermediate path dominates.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

namespace {

using namespace bdio;

core::ExperimentResult Run(const core::BenchOptions& options,
                           const std::string& label,
                           std::function<void(core::ExperimentSpec*)> tweak,
                           bool collect_trace = false) {
  core::ExperimentSpec spec = options.MakeSpec(
      workloads::WorkloadKind::kTeraSort, core::SlotsLevels()[0]);
  spec.collect_trace = collect_trace;
  tweak(&spec);
  auto result = core::RunExperiment(spec);
  BDIO_CHECK(result.ok()) << result.status().ToString();
  result->label = label;
  return std::move(result).value();
}

uint64_t Spills(const core::ExperimentResult& r) {
  uint64_t total = 0;
  for (const auto& j : r.jobs) total += j.spills;
  return total;
}

uint64_t IntermediateWrites(const core::ExperimentResult& r) {
  uint64_t total = 0;
  for (const auto& j : r.jobs) total += j.intermediate_write_bytes;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Ablation", "Hadoop tuning knobs under TeraSort (io.sort.mb, "
                  "parallel copies, slow-start)",
      options);

  std::vector<core::ExperimentResult> results;
  results.push_back(Run(options, "defaults (100MB/5/0.05)",
                        [](core::ExperimentSpec*) {},
                        !options.trace_out.empty()));
  results.push_back(Run(options, "io.sort.mb 32MB",
                        [](core::ExperimentSpec* s) {
                          s->sort_buffer_bytes = MiB(32);
                        }));
  results.push_back(Run(options, "io.sort.mb 200MB",
                        [](core::ExperimentSpec* s) {
                          s->sort_buffer_bytes = MiB(200);
                        }));
  results.push_back(Run(options, "parallel copies 1",
                        [](core::ExperimentSpec* s) {
                          s->parallel_copies = 1;
                        }));
  results.push_back(Run(options, "parallel copies 20",
                        [](core::ExperimentSpec* s) {
                          s->parallel_copies = 20;
                        }));
  results.push_back(Run(options, "slow-start 0.8",
                        [](core::ExperimentSpec* s) {
                          s->reduce_slowstart = 0.8;
                        }));

  TextTable table;
  table.SetHeader({"configuration", "duration_s", "spills",
                   "intermediate written MB", "mr util%", "mr wait ms"});
  for (const auto& r : results) {
    table.AddRow({r.label, TextTable::Num(r.duration_s, 1),
                  std::to_string(Spills(r)),
                  TextTable::Num(
                      static_cast<double>(IntermediateWrites(r)) / 1e6, 0),
                  TextTable::Num(r.mr.util.Mean(), 1),
                  TextTable::Num(r.mr.wait_ms.ActiveMean(), 1)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (const auto& r : results) obs.emplace_back(r.label, &r);
    core::WriteObsArtifacts(options, obs);
  }

  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "smaller sort buffer means more spills",
      Spills(results[1]) > Spills(results[0])});
  checks.push_back(core::ShapeCheck{
      "multi-spill maps add a merge pass of intermediate writes",
      IntermediateWrites(results[1]) > IntermediateWrites(results[0])});
  checks.push_back(core::ShapeCheck{
      "a single shuffle copy stream slows the job",
      results[3].duration_s > results[0].duration_s});
  checks.push_back(core::ShapeCheck{
      "late reducer start (0.8) is no faster than slow-start 0.05",
      results[5].duration_s >= results[0].duration_s * 0.95});
  return core::PrintShapeChecks(checks);
}
