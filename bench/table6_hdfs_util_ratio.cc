// Table 6: the fraction of per-disk iostat samples with HDFS-disk
// utilization above 90/95/99%. Paper values (percent):
//   AGG 22.6/16.4/9.8, TS 5.2/3.8/2.4, KM 0.4/0.3/0.2, PR 0.5/0.3/0.2.
// The shape to reproduce: AGG > TS >> KM ~ PR, monotone in the threshold.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader("Table 6",
                          "HDFS disks: fraction of samples above x% util",
                          options);

  const core::Factors factors = core::SlotsLevels()[0];  // 1_8, 16G, on
  if (!options.trace_out.empty()) {
    options.trace_label = factors.Label(workloads::AllWorkloads().front());
  }
  core::GridRunner grid(options);
  grid.PrefetchAll({factors});  // all four workloads run concurrently

  TextTable table;
  table.SetHeader({"workload", ">90%util", ">95%util", ">99%util",
                   "paper >90%"});
  const char* paper[] = {"22.6%", "5.2%", "0.4%", "0.5%"};
  std::map<workloads::WorkloadKind, double> above90;
  int i = 0;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    above90[w] = res.hdfs.util_above_90;
    table.AddRow({workloads::WorkloadShortName(w),
                  TextTable::Percent(res.hdfs.util_above_90),
                  TextTable::Percent(res.hdfs.util_above_95),
                  TextTable::Percent(res.hdfs.util_above_99), paper[i++]});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      const auto& res = grid.Get(w, factors);
      obs.emplace_back(res.label, &res);
    }
    core::WriteObsArtifacts(options, obs);
  }

  using workloads::WorkloadKind;
  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "AGG busiest HDFS disks",
      above90[WorkloadKind::kAggregation] > above90[WorkloadKind::kTeraSort]});
  checks.push_back(core::ShapeCheck{
      "TS above the iterative workloads",
      above90[WorkloadKind::kTeraSort] >= above90[WorkloadKind::kKMeans] &&
          above90[WorkloadKind::kTeraSort] >=
              above90[WorkloadKind::kPageRank]});
  checks.push_back(core::ShapeCheck{
      "KM and PR near zero",
      above90[WorkloadKind::kKMeans] < 0.05 &&
          above90[WorkloadKind::kPageRank] < 0.05});
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " tail monotone in threshold",
        res.hdfs.util_above_90 >= res.hdfs.util_above_95 &&
            res.hdfs.util_above_95 >= res.hdfs.util_above_99});
  }
  return core::PrintShapeChecks(checks);
}
