// Extension bench: the paper's stated future work — "combine a low-level
// description of physical resources and the high-level functional
// composition of big data workloads to reveal the major source of I/O
// demand". Every file in the stack is tagged with its role; the page cache
// attributes each physical byte to a source; this bench prints the
// breakdown per workload.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "Sources of physical I/O demand per workload", options);

  core::GridRunner grid(options);
  const core::Factors factors = core::SlotsLevels()[0];  // 1_8, 16G, on
  grid.PrefetchAll({factors});  // all four workloads run concurrently

  TextTable table;
  table.SetHeader({"workload", "source", "read MB", "written MB",
                   "share of demand"});
  std::map<workloads::WorkloadKind, std::map<std::string, double>> share;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    uint64_t total = 0;
    for (const auto& [src, v] : res.io_sources) total += v.total();
    for (const auto& [src, v] : res.io_sources) {
      if (v.total() == 0) continue;
      const double frac =
          static_cast<double>(v.total()) / static_cast<double>(total);
      share[w][src] = frac;
      table.AddRow({workloads::WorkloadShortName(w), src,
                    TextTable::Num(static_cast<double>(v.disk_read_bytes) /
                                       1e6,
                                   0),
                    TextTable::Num(static_cast<double>(v.disk_write_bytes) /
                                       1e6,
                                   0),
                    TextTable::Percent(frac)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  using workloads::WorkloadKind;
  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "AGG demand is almost entirely input scanning",
      share[WorkloadKind::kAggregation]["hdfs-input"] > 0.9});
  const double ts_intermediate =
      share[WorkloadKind::kTeraSort]["map-spill"] +
      share[WorkloadKind::kTeraSort]["map-output"] +
      share[WorkloadKind::kTeraSort]["shuffle-run"];
  checks.push_back(core::ShapeCheck{
      "TS demand is dominated by intermediate data (spill+output+runs)",
      ts_intermediate > 0.4});
  checks.push_back(core::ShapeCheck{
      "TS output replication shows up as hdfs-output demand",
      share[WorkloadKind::kTeraSort]["hdfs-output"] > 0.05});
  checks.push_back(core::ShapeCheck{
      "KM demand is input re-scanning (iterations)",
      share[WorkloadKind::kKMeans]["hdfs-input"] > 0.8});
  checks.push_back(core::ShapeCheck{
      "PR shows all source classes (state + contributions)",
      share[WorkloadKind::kPageRank].size() >= 3});
  return core::PrintShapeChecks(checks);
}
