// Extension bench: the paper's stated future work — "combine a low-level
// description of physical resources and the high-level functional
// composition of big data workloads to reveal the major source of I/O
// demand". Every file in the stack is tagged with its role; the page cache
// attributes each physical byte to a source counter in the metrics
// registry; this bench reads the registry and prints the breakdown per
// workload.

#include <cstdio>
#include <map>

#include "bench/figure_common.h"
#include "common/io_tag.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace bdio;
  core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Extension", "Sources of physical I/O demand per workload", options);

  const core::Factors factors = core::SlotsLevels()[0];  // 1_8, 16G, on
  if (!options.trace_out.empty()) {
    options.trace_label = factors.Label(workloads::AllWorkloads().front());
  }
  core::GridRunner grid(options);
  grid.PrefetchAll({factors});  // all four workloads run concurrently

  TextTable table;
  table.SetHeader({"workload", "source", "read MB", "written MB",
                   "share of demand"});
  std::map<workloads::WorkloadKind, std::map<std::string, double>> share;
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    const auto& res = grid.Get(w, factors);
    // Per-source physical bytes, straight from the registry counters the
    // page caches bump on every disk-bound bio. Sorted by source name so
    // the rows are deterministic.
    struct Volume {
      uint64_t read = 0;
      uint64_t written = 0;
    };
    std::map<std::string, Volume> sources;
    uint64_t total = 0;
    for (uint32_t t = 0; t < kNumIoTags; ++t) {
      const std::string src = IoTagName(static_cast<IoTag>(t));
      const obs::Labels labels{{"source", src}};
      const uint64_t r =
          res.metrics->CounterValue("pagecache.tag_disk_read_bytes", labels);
      const uint64_t wr =
          res.metrics->CounterValue("pagecache.tag_disk_write_bytes", labels);
      if (r + wr == 0) continue;
      sources[src] = Volume{r, wr};
      total += r + wr;
    }
    for (const auto& [src, v] : sources) {
      const double frac = static_cast<double>(v.read + v.written) /
                          static_cast<double>(total);
      share[w][src] = frac;
      table.AddRow({workloads::WorkloadShortName(w), src,
                    TextTable::Num(static_cast<double>(v.read) / 1e6, 0),
                    TextTable::Num(static_cast<double>(v.written) / 1e6, 0),
                    TextTable::Percent(frac)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
      const auto& res = grid.Get(w, factors);
      obs.emplace_back(res.label, &res);
    }
    core::WriteObsArtifacts(options, obs);
  }

  using workloads::WorkloadKind;
  std::vector<core::ShapeCheck> checks;
  checks.push_back(core::ShapeCheck{
      "AGG demand is almost entirely input scanning",
      share[WorkloadKind::kAggregation]["hdfs-input"] > 0.9});
  const double ts_intermediate =
      share[WorkloadKind::kTeraSort]["map-spill"] +
      share[WorkloadKind::kTeraSort]["map-output"] +
      share[WorkloadKind::kTeraSort]["shuffle-run"];
  checks.push_back(core::ShapeCheck{
      "TS demand is dominated by intermediate data (spill+output+runs)",
      ts_intermediate > 0.4});
  checks.push_back(core::ShapeCheck{
      "TS output replication shows up as hdfs-output demand",
      share[WorkloadKind::kTeraSort]["hdfs-output"] > 0.05});
  checks.push_back(core::ShapeCheck{
      "KM demand is input re-scanning (iterations)",
      share[WorkloadKind::kKMeans]["hdfs-input"] > 0.8});
  checks.push_back(core::ShapeCheck{
      "PR shows all source classes (state + contributions)",
      share[WorkloadKind::kPageRank].size() >= 3});
  return core::PrintShapeChecks(checks);
}
