// Figure 8: effect of node memory on the average waiting time of I/O
// requests. Paper findings: waiting time varies with memory, and the
// MapReduce disks' waiting time is larger than the HDFS disks'.

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kPageRank}) {
    const auto& r16 = grid.Get(w, lv[0]);
    const auto& r32 = grid.Get(w, lv[1]);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR wait exceeds HDFS wait",
        core::Summarize(r16.mr, iostat::Metric::kWait) >
            core::Summarize(r16.hdfs, iostat::Metric::kWait)});
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " MR wait shrinks (or holds) with more memory",
        core::Summarize(r32.mr, iostat::Metric::kWait) <=
            core::Summarize(r16.mr, iostat::Metric::kWait) * 1.1});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 8";
  def.caption = "Average waiting time of I/O requests vs node memory";
  def.context = bdio::bench::FactorContext::kMemory;
  def.metrics = {bdio::iostat::Metric::kWait, bdio::iostat::Metric::kAwait,
                 bdio::iostat::Metric::kSvctm};
  def.groups = {"hdfs", "mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
