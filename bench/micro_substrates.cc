// Substrate microbenchmarks (google-benchmark): throughput of the building
// blocks the experiment harness is made of. These are sanity/perf
// regressions, not paper figures.

#include <benchmark/benchmark.h>

#include "cluster/cpu.h"
#include "common/histogram.h"
#include "common/random.h"
#include "compress/codec.h"
#include "mrfunc/local_runner.h"
#include "net/network.h"
#include "os/file_system.h"
#include "os/page_cache.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "workloads/datagen.h"
#include "workloads/terasort.h"

namespace bdio {
namespace {

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAfter(static_cast<SimDuration>(i), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) sink ^= rng.Next();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (auto _ : state) h.Add(rng.UniformDouble(0, 1e9));
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_DiskRandomReads(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    storage::BlockDevice dev(&sim, "sda", storage::DiskParameters{}, Rng(3));
    Rng rng(4);
    for (int i = 0; i < 256; ++i) {
      dev.Submit(storage::IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8),
                 nullptr);
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DiskRandomReads);

void BM_PageCacheStreamWrite(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    storage::BlockDevice dev(&sim, "sda", storage::DiskParameters{}, Rng(5));
    os::PageCacheParams p;
    p.capacity_bytes = MiB(64);
    os::PageCache cache(&sim, p);
    os::FileSystem fs(&sim, &dev, &cache);
    auto file = fs.Create("f").value();
    for (int i = 0; i < 64; ++i) fs.Append(file, MiB(1), nullptr);
    sim.Run();
  }
  state.SetBytesProcessed(state.iterations() * MiB(64));
}
BENCHMARK(BM_PageCacheStreamWrite);

void BM_CodecCompressText(benchmark::State& state) {
  Rng rng(6);
  auto records = workloads::GenTeraSortRecords(&rng, 5000);
  const std::string blob = mrfunc::SerializeRecords(records);
  compress::FastLzCodec codec;
  std::string out;
  for (auto _ : state) {
    BDIO_CHECK_OK(codec.Compress(blob, &out));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_CodecCompressText);

void BM_CodecDecompressText(benchmark::State& state) {
  Rng rng(7);
  auto records = workloads::GenTeraSortRecords(&rng, 5000);
  const std::string blob = mrfunc::SerializeRecords(records);
  compress::FastLzCodec codec;
  std::string compressed, out;
  BDIO_CHECK_OK(codec.Compress(blob, &compressed));
  for (auto _ : state) {
    BDIO_CHECK_OK(codec.Decompress(compressed, &out));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_CodecDecompressText);

void BM_NetworkFanIn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(&sim, 8);
    int done = 0;
    for (uint32_t s = 1; s < 8; ++s) {
      net.Transfer(s, 0, MiB(4), [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(BM_NetworkFanIn);

void BM_CpuProcessorSharing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    cluster::CpuScheduler cpu(&sim, 12);
    int done = 0;
    for (int i = 0; i < 64; ++i) cpu.Run(Millis(50), [&done] { ++done; });
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CpuProcessorSharing);

void BM_FunctionalTeraSort(benchmark::State& state) {
  Rng rng(8);
  auto input = workloads::GenTeraSortRecords(&rng, 2000);
  for (auto _ : state) {
    mrfunc::JobConfig config;
    config.num_reduce_tasks = 4;
    auto result = workloads::RunTeraSort(input, config);
    BDIO_CHECK(result.ok());
    benchmark::DoNotOptimize(result->output.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FunctionalTeraSort);

}  // namespace
}  // namespace bdio

BENCHMARK_MAIN();
