// Ablation bench for the design choices DESIGN.md calls out, centred on the
// paper's Observation 4: HDFS and MapReduce data have different I/O modes,
// so storage should be configured per mode. Runs TeraSort (the workload
// exercising both disk classes) under:
//   - disk split 3+3 (paper) vs 4+2 vs 2+4,
//   - deadline vs noop elevator,
//   - readahead 1 MiB vs 128 KiB,
//   - writeback period 5 s vs 30 s.

#include <cstdio>

#include "bench/figure_common.h"
#include "common/table.h"

namespace {

using namespace bdio;

core::ExperimentResult Run(const core::BenchOptions& options,
                           const std::string& label,
                           std::function<void(core::ExperimentSpec*)> tweak,
                           bool collect_trace = false) {
  core::ExperimentSpec spec = options.MakeSpec(
      workloads::WorkloadKind::kTeraSort, core::SlotsLevels()[0]);
  spec.collect_trace = collect_trace;
  tweak(&spec);
  auto result = core::RunExperiment(spec);
  BDIO_CHECK(result.ok()) << result.status().ToString();
  result->label = label;
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bdio;
  const core::BenchOptions options = core::BenchOptions::Parse(argc, argv);
  core::PrintFigureHeader(
      "Ablation", "Storage-configuration choices under TeraSort", options);

  std::vector<core::ExperimentResult> results;
  results.push_back(Run(options, "baseline 3+3 deadline",
                        [](core::ExperimentSpec*) {},
                        !options.trace_out.empty()));
  results.push_back(Run(options, "disks 4 hdfs + 2 mr",
                        [](core::ExperimentSpec* s) {
                          s->num_hdfs_disks = 4;
                          s->num_mr_disks = 2;
                        }));
  results.push_back(Run(options, "disks 2 hdfs + 4 mr",
                        [](core::ExperimentSpec* s) {
                          s->num_hdfs_disks = 2;
                          s->num_mr_disks = 4;
                        }));
  results.push_back(Run(options, "noop elevator",
                        [](core::ExperimentSpec* s) {
                          s->io_scheduler = "noop";
                        }));
  results.push_back(Run(options, "cfq elevator",
                        [](core::ExperimentSpec* s) {
                          s->io_scheduler = "cfq";
                        }));
  results.push_back(Run(options, "readahead 128K",
                        [](core::ExperimentSpec* s) {
                          s->readahead_max_bytes = KiB(128);
                        }));
  results.push_back(Run(options, "writeback 30s",
                        [](core::ExperimentSpec* s) {
                          s->writeback_period = Seconds(30);
                        }));
  results.push_back(Run(options, "NCQ depth 32 (SPTF)",
                        [](core::ExperimentSpec* s) {
                          s->ncq_depth = 32;
                        }));
  results.push_back(Run(options, "SSD intermediate disks",
                        [](core::ExperimentSpec* s) {
                          s->ssd_intermediate = true;
                        }));

  TextTable table;
  table.SetHeader({"configuration", "duration_s", "hdfs util%", "mr util%",
                   "mr wait ms", "hdfs rMB/s", "mr avgrq-sz"});
  for (const auto& r : results) {
    table.AddRow({r.label, TextTable::Num(r.duration_s, 1),
                  TextTable::Num(r.hdfs.util.Mean(), 1),
                  TextTable::Num(r.mr.util.Mean(), 1),
                  TextTable::Num(r.mr.wait_ms.ActiveMean(), 1),
                  TextTable::Num(r.hdfs.read_mbps.Mean(), 1),
                  TextTable::Num(r.mr.avgrq_sz.ActiveMean(), 0)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    std::vector<std::pair<std::string, const core::ExperimentResult*>> obs;
    for (const auto& r : results) obs.emplace_back(r.label, &r);
    core::WriteObsArtifacts(options, obs);
  }

  std::vector<core::ShapeCheck> checks;
  // TeraSort is MR-bound: giving the intermediate data more spindles must
  // beat giving HDFS more (the paper's per-mode provisioning implication).
  checks.push_back(core::ShapeCheck{
      "4 MR disks beat 2 MR disks for the MR-bound workload",
      results[2].duration_s < results[1].duration_s});
  // The deadline elevator's sorting must not be worse than FIFO on seeky
  // MR traffic.
  checks.push_back(core::ShapeCheck{
      "deadline elevator no slower than noop",
      results[0].duration_s <= results[3].duration_s * 1.10});
  // Flash for the random-small class: the paper's per-mode provisioning
  // taken to 2013 hardware.
  checks.push_back(core::ShapeCheck{
      "SSD intermediate disks speed up the sort",
      results.back().duration_s < results[0].duration_s * 0.8});
  return core::PrintShapeChecks(checks);
}
