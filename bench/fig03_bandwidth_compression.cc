// Figure 3: effect of intermediate-data compression on the MapReduce disks'
// read/write bandwidth. Paper findings: with compression the intermediate
// volume shrinks and the job speeds up; compression has little impact on
// HDFS bandwidth (not plotted in the paper; checked here).

#include "bench/figure_common.h"

namespace bdio::bench {
namespace {

using workloads::WorkloadKind;

std::vector<core::ShapeCheck> Checks(core::GridRunner& grid,
                                     const std::vector<core::Factors>& lv) {
  std::vector<core::ShapeCheck> checks;
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kPageRank}) {
    const auto& off = grid.Get(w, lv[0]);
    const auto& on = grid.Get(w, lv[1]);
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " runs faster with compressed intermediate data",
        on.duration_s < off.duration_s});
    // The volume written to the MR disks shrinks by roughly the codec ratio.
    uint64_t im_off = 0, im_on = 0;
    for (const auto& j : off.jobs) im_off += j.intermediate_write_bytes;
    for (const auto& j : on.jobs) im_on += j.intermediate_write_bytes;
    checks.push_back(core::ShapeCheck{
        std::string(workloads::WorkloadShortName(w)) +
            " intermediate volume shrinks with compression",
        im_on < im_off * 8 / 10});
  }
  // HDFS read bandwidth unaffected by intermediate compression (AGG is a
  // pure scan, the cleanest probe).
  {
    const double off = core::Summarize(
        grid.Get(WorkloadKind::kAggregation, lv[0]).hdfs,
        iostat::Metric::kReadMBps);
    const double on = core::Summarize(
        grid.Get(WorkloadKind::kAggregation, lv[1]).hdfs,
        iostat::Metric::kReadMBps);
    checks.push_back(core::ShapeCheck{
        "AGG HDFS read bandwidth unchanged by compression",
        core::RoughlyEqual(off, on, 0.2, 2.0)});
  }
  return checks;
}

}  // namespace
}  // namespace bdio::bench

int main(int argc, char** argv) {
  bdio::bench::FigureDef def;
  def.id = "Figure 3";
  def.caption =
      "MapReduce-disk read/write bandwidth vs intermediate-data compression";
  def.context = bdio::bench::FactorContext::kCompression;
  def.metrics = {bdio::iostat::Metric::kReadMBps,
                 bdio::iostat::Metric::kWriteMBps};
  def.groups = {"mr"};
  def.checks = bdio::bench::Checks;
  return bdio::bench::RunFigure(argc, argv, def);
}
