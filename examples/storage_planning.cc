// Storage planning: the paper's Observation 4 says HDFS data and MapReduce
// intermediate data have different I/O modes, so their storage should be
// configured separately. This example uses the characterization framework
// the way a capacity planner would: given 6 data disks per node, how should
// they be split between the two classes for each workload?
//
// The six candidate configurations are independent simulations, so they
// are swept concurrently with core::runner::SweepRunner — results come
// back in submission order, bit-identical to a serial sweep (BDIO_JOBS
// caps the worker count).
//
//   $ ./storage_planning

#include <cstdio>

#include "common/table.h"
#include "core/runner/sweep_runner.h"

int main() {
  using namespace bdio;

  struct Split {
    uint32_t hdfs;
    uint32_t mr;
  };
  const Split splits[] = {{4, 2}, {3, 3}, {2, 4}};
  const workloads::WorkloadKind workloads_to_plan[] = {
      workloads::WorkloadKind::kAggregation,
      workloads::WorkloadKind::kTeraSort};

  // One spec per (workload, split), workload-major — the print order below.
  std::vector<core::ExperimentSpec> specs;
  for (workloads::WorkloadKind w : workloads_to_plan) {
    for (const Split& split : splits) {
      core::ExperimentSpec spec;
      spec.workload = w;
      spec.scale = 1.0 / 256;
      spec.num_hdfs_disks = split.hdfs;
      spec.num_mr_disks = split.mr;
      specs.push_back(spec);
    }
  }
  core::runner::SweepRunner sweep;
  const auto results = sweep.Run(specs);

  TextTable table;
  table.SetHeader({"workload", "disks hdfs+mr", "duration_s", "hdfs util%",
                   "mr util%", "verdict"});

  size_t next = 0;
  for (workloads::WorkloadKind w : workloads_to_plan) {
    double best = 1e100;
    uint32_t best_hdfs = 0;
    std::vector<std::vector<std::string>> rows;
    for (const Split& split : splits) {
      const auto& result = results[next++];
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->duration_s < best) {
        best = result->duration_s;
        best_hdfs = split.hdfs;
      }
      rows.push_back({workloads::WorkloadShortName(w),
                      std::to_string(split.hdfs) + "+" +
                          std::to_string(split.mr),
                      TextTable::Num(result->duration_s, 1),
                      TextTable::Num(result->hdfs.util.Mean(), 1),
                      TextTable::Num(result->mr.util.Mean(), 1), ""});
    }
    for (auto& row : rows) {
      if (row[1] == std::to_string(best_hdfs) + "+" +
                        std::to_string(6 - best_hdfs)) {
        row[5] = "<- fastest";
      }
      table.AddRow(row);
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nReading the result: the scan-bound OLAP query wants spindles on the"
      "\nHDFS side, while the sort's huge intermediate data wants them on"
      "\nthe MapReduce side — storage must be provisioned per I/O mode, the"
      "\npaper's design implication.\n");
  return 0;
}
