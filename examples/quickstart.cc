// Quickstart: characterize one workload's disk I/O on the simulated
// testbed, the way the paper does — run TeraSort under a chosen factor
// configuration, sample iostat on both disk classes, and print the
// headline metrics.
//
//   $ ./quickstart
//
// See storage_planning.cc and custom_workload.cc for deeper API usage.

#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace bdio;

  // Pick the workload and the paper's factor setting.
  core::ExperimentSpec spec;
  spec.workload = workloads::WorkloadKind::kTeraSort;
  spec.factors.slots = mapreduce::SlotConfig::Paper_1_8();
  spec.factors.memory_bytes = GiB(16);
  spec.factors.compress_intermediate = true;
  // Scale the 1 TB run down so this example finishes in a few seconds.
  spec.scale = 1.0 / 256;

  auto result = core::RunExperiment(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("configuration: %s\n", result->label.c_str());
  std::printf("job wall time: %.1f simulated seconds\n\n",
              result->duration_s);

  auto show = [](const char* name, const core::GroupObservation& obs) {
    std::printf("%s disks:\n", name);
    std::printf("  read bandwidth   mean %6.1f MB/s   peak %6.1f MB/s\n",
                obs.read_mbps.Mean(), obs.read_mbps.Peak());
    std::printf("  write bandwidth  mean %6.1f MB/s\n",
                obs.write_mbps.Mean());
    std::printf("  utilization      mean %6.1f %%     >90%% in %4.1f%% of "
                "samples\n",
                obs.util.Mean(), obs.util_above_90 * 100);
    std::printf("  await            %6.1f ms (service %0.1f ms + queue "
                "%0.1f ms)\n",
                obs.await_ms.ActiveMean(), obs.svctm_ms.ActiveMean(),
                obs.wait_ms.ActiveMean());
    std::printf("  avg request size %6.0f sectors (%.0f KiB)\n\n",
                obs.avgrq_sz.ActiveMean(),
                obs.avgrq_sz.ActiveMean() * 512 / 1024);
  };
  show("HDFS", result->hdfs);
  show("MapReduce intermediate", result->mr);

  std::printf("execution timeline: peak %d maps / %d reduces running, "
              "mean CPU %.0f%% of %u cores\n",
              static_cast<int>(result->maps_running.Peak()),
              static_cast<int>(result->reduces_running.Peak()),
              result->cpu_util.Mean() * 100, 12 * 10);

  std::printf("\nwhere the physical I/O came from:\n");
  for (const auto& [source, v] : result->io_sources) {
    std::printf("  %-12s read %6.0f MB   written %6.0f MB\n",
                source.c_str(),
                static_cast<double>(v.disk_read_bytes) / 1e6,
                static_cast<double>(v.disk_write_bytes) / 1e6);
  }

  std::printf("\nHadoop counters:\n");
  for (const auto& job : result->jobs) {
    std::printf(
        "  maps %u (%u node-local), reduces %u, HDFS read %.0f MB, "
        "HDFS written %.0f MB, intermediate %.0f MB, shuffled %.0f MB\n",
        job.maps_launched, job.maps_local, job.reduces_launched,
        static_cast<double>(job.hdfs_read_bytes) / 1e6,
        static_cast<double>(job.hdfs_write_bytes) / 1e6,
        static_cast<double>(job.intermediate_write_bytes) / 1e6,
        static_cast<double>(job.shuffle_network_bytes) / 1e6);
  }
  return 0;
}
