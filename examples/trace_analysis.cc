// Trace analysis: record a block-level trace (blktrace-style) of one HDFS
// disk and one MapReduce disk during a TeraSort run, round-trip it through
// the on-disk trace format, and print the access-pattern analysis that
// backs the paper's "HDFS is large sequential, MapReduce is small random"
// observation.
//
//   $ ./trace_analysis [trace_output_dir]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/cluster.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workloads/profile.h"

int main(int argc, char** argv) {
  using namespace bdio;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  Rng rng(42);
  sim::Simulator sim;
  cluster::ClusterParams cp;
  const double scale = 1.0 / 256;
  cp.node.memory_bytes = static_cast<uint64_t>(GiB(16) * scale);
  cp.node.daemon_bytes = static_cast<uint64_t>(GiB(2) * scale);
  cp.node.per_slot_heap_bytes = static_cast<uint64_t>(MiB(200) * scale);
  cp.node.min_cache_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 16, rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());

  workloads::PlanOptions options;
  options.scale = scale;
  const workloads::WorkloadPlan plan =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, options);
  BDIO_CHECK_OK(dfs.Preload(plan.dataset_path, plan.dataset_bytes));

  // Attach recorders to one disk of each class on worker 0.
  trace::Recorder hdfs_rec, mr_rec;
  hdfs_rec.Attach(cluster.node(0)->hdfs_disk(0));
  mr_rec.Attach(cluster.node(0)->mr_disk(0));

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), rng.Fork());
  bool ok = false;
  engine.RunJob(plan.jobs[0].spec,
                [&](Status s, const mapreduce::JobCounters&) { ok = s.ok(); });
  sim.Run();
  if (!ok) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  // Persist and reload the traces (the blkparse-like text format).
  auto round_trip = [&](const trace::Recorder& rec, const std::string& name) {
    const std::string path = out_dir + "/" + name + ".trace";
    std::ofstream out(path);
    trace::WriteTrace(rec.events(), out);
    out.close();
    std::ifstream in(path);
    auto loaded = trace::ReadTrace(in);
    BDIO_CHECK(loaded.ok()) << loaded.status().ToString();
    std::printf("%s: %zu requests captured -> %s\n", name.c_str(),
                loaded->size(), path.c_str());
    return std::move(loaded).value();
  };
  const auto hdfs_events = round_trip(hdfs_rec, "hdfs_disk");
  const auto mr_events = round_trip(mr_rec, "mr_disk");

  trace::Analyzer hdfs_an(hdfs_events);
  trace::Analyzer mr_an(mr_events);
  std::printf("\n--- HDFS data disk (n0-hdfs0) ---\n%s",
              hdfs_an.Summary().c_str());
  std::printf("\n--- MapReduce intermediate disk (n0-mr0) ---\n%s",
              mr_an.Summary().c_str());

  std::printf("\nObservation 4 in numbers:\n");
  std::printf("  sequential fraction   hdfs %.2f vs mr %.2f\n",
              hdfs_an.SequentialFraction(), mr_an.SequentialFraction());
  std::printf("  mean request size     hdfs %.0f vs mr %.0f sectors\n",
              hdfs_an.MeanRequestSectors(), mr_an.MeanRequestSectors());
  std::printf("  median queue wait     hdfs %.1f vs mr %.1f ms\n",
              hdfs_an.queue_wait_ms().Median(),
              mr_an.queue_wait_ms().Median());
  return 0;
}
