// Custom workload: how to characterize YOUR application with this library.
//
//  1. Implement the job with the functional engine (real keys and values)
//     and run it on a sample of your data to measure its volume ratios.
//  2. Build a SimJobSpec from those measurements.
//  3. Run it on the simulated testbed and read the iostat characterization.
//
// The example workload is an inverted-index builder (word -> document ids),
// a common text-processing job the paper's introduction motivates.
//
//   $ ./custom_workload

#include <cstdio>
#include <set>

#include "cluster/cluster.h"
#include "core/experiment.h"
#include "hdfs/hdfs.h"
#include "iostat/iostat.h"
#include "mapreduce/engine.h"
#include "mrfunc/local_runner.h"
#include "sim/simulator.h"
#include "workloads/datagen.h"

namespace {

using namespace bdio;

/// Map: (doc_id, text) -> (word, doc_id) pairs.
class InvertedIndexMapper : public mrfunc::Mapper {
 public:
  void Map(const mrfunc::KeyValue& record, mrfunc::Emitter* out) override {
    size_t start = 0;
    const std::string& text = record.value;
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) {
        out->Emit(text.substr(start, end - start), record.key);
      }
      start = end + 1;
    }
  }
};

/// Reduce: (word, [doc ids]) -> (word, sorted unique posting list).
class PostingListReducer : public mrfunc::Reducer {
 public:
  void Reduce(const std::string& key,
              const std::vector<std::string>& values,
              mrfunc::Emitter* out) override {
    std::set<std::string> docs(values.begin(), values.end());
    std::string postings;
    for (const auto& d : docs) {
      if (!postings.empty()) postings += ' ';
      postings += d;
    }
    out->Emit(key, postings);
  }
};

}  // namespace

int main() {
  // ---- Step 1: measure the job on sample data (functional engine). ------
  Rng rng(7);
  const auto sample = workloads::GenTeraSortRecords(&rng, 20000);
  InvertedIndexMapper mapper;
  PostingListReducer reducer;
  mrfunc::LocalJobRunner runner;
  mrfunc::JobConfig config;
  config.compress_map_output = true;  // measure the codec on real output
  std::vector<mrfunc::KeyValue> output;
  auto stats = runner.Run(sample, &mapper, &reducer, config, &output);
  if (!stats.ok()) {
    std::fprintf(stderr, "functional run failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  const double map_ratio = static_cast<double>(stats->map_output_bytes) /
                           static_cast<double>(stats->map_input_bytes);
  const double out_ratio = static_cast<double>(stats->reduce_output_bytes) /
                           static_cast<double>(stats->map_input_bytes);
  std::printf("measured on %zu sample records:\n", sample.size());
  std::printf("  map output ratio   %.3f\n", map_ratio);
  std::printf("  job output ratio   %.3f\n", out_ratio);
  std::printf("  codec ratio        %.3f\n\n",
              stats->intermediate_compression_ratio);

  // ---- Step 2+3: replay at datacenter scale on the simulated testbed. ---
  sim::Simulator sim;
  cluster::ClusterParams cp;  // the paper's testbed
  const double scale = 1.0 / 256;
  cp.node.memory_bytes = static_cast<uint64_t>(GiB(16) * scale);
  cp.node.daemon_bytes = static_cast<uint64_t>(GiB(2) * scale);
  cp.node.per_slot_heap_bytes = static_cast<uint64_t>(MiB(200) * scale);
  cp.node.min_cache_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, /*total_slots=*/16, Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));
  BDIO_CHECK_OK(dfs.Preload("/input/docs",
                            static_cast<uint64_t>(GiB(256) * scale)));

  iostat::Monitor monitor(&sim, Seconds(1));
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < 3; ++d) {
      monitor.AddDevice(cluster.node(n)->hdfs_disk(d), "hdfs");
      monitor.AddDevice(cluster.node(n)->mr_disk(d), "mr");
    }
  }
  monitor.Start();

  mapreduce::SimJobSpec spec;
  spec.name = "inverted-index";
  spec.input_path = "/input/docs";
  spec.output_path = "/out/index";
  spec.map_output_ratio = map_ratio;
  spec.output_ratio = out_ratio;
  spec.compress_intermediate = true;
  spec.compress_ratio = stats->intermediate_compression_ratio;
  spec.map_cpu_ns_per_byte = 40;  // text tokenization is CPU-heavy
  spec.reduce_cpu_ns_per_byte = 15;

  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), Rng(3));
  bool ok = false;
  mapreduce::JobCounters counters;
  engine.RunJob(spec, [&](Status s, const mapreduce::JobCounters& c) {
    ok = s.ok();
    counters = c;
    monitor.Stop();
  });
  sim.Run();
  if (!ok) {
    std::fprintf(stderr, "simulated job failed\n");
    return 1;
  }

  std::printf("simulated on the 10-worker testbed (scale 1/256):\n");
  std::printf("  job duration       %.1f s\n", counters.DurationSeconds());
  std::printf("  HDFS  util mean    %.1f %%\n",
              monitor.GroupMean("hdfs", iostat::Metric::kUtil).Mean());
  std::printf("  MR    util mean    %.1f %%\n",
              monitor.GroupMean("mr", iostat::Metric::kUtil).Mean());
  std::printf("  HDFS  avgrq-sz     %.0f sectors\n",
              monitor.GroupActiveMean("hdfs", iostat::Metric::kAvgRqSz)
                  .ActiveMean());
  std::printf("  MR    avgrq-sz     %.0f sectors\n",
              monitor.GroupActiveMean("mr", iostat::Metric::kAvgRqSz)
                  .ActiveMean());
  std::printf("\nlast iostat -x interval:\n%s",
              monitor.LatestReport().c_str());
  return 0;
}
